package exact

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
)

// multiDevice has two identical CLB+DSP neighborhoods so that two regions
// with the same requirements can be placed signature-identically.
func multiDevice() *device.Device {
	cols := make([]device.TypeID, 18)
	for i := range cols {
		cols[i] = device.V5CLB
	}
	cols[3] = device.V5DSP
	cols[9] = device.V5DSP
	cols[14] = device.V5BRAM
	d, err := device.NewColumnar("multi", cols, 4, device.V5Types(), nil)
	if err != nil {
		panic(err)
	}
	return d
}

// TestMultiRegionFC: one area compatible with BOTH regions (the paper's
// general s_{c,n}); the solver must co-shape the two regions.
func TestMultiRegionFC(t *testing.T) {
	p := &core.Problem{
		Device: multiDevice(),
		Regions: []core.Region{
			{Name: "A", Req: device.Requirements{device.ClassCLB: 2, device.ClassDSP: 1}},
			{Name: "B", Req: device.Requirements{device.ClassCLB: 2, device.ClassDSP: 1}},
		},
		FCAreas: []core.FCRequest{
			{Region: 0, AlsoCompatible: []int{1}, Mode: core.RelocConstraint},
		},
		Objective: core.DefaultObjective(),
	}
	sol, err := (&Engine{}).Solve(context.Background(), p, core.SolveOptions{TimeLimit: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Validate(p); err != nil {
		t.Fatal(err)
	}
	fc := sol.FC[0]
	if !fc.Placed {
		t.Fatal("area not placed")
	}
	for ri := range p.Regions {
		if !p.Device.Compatible(sol.Regions[ri], fc.Rect) {
			t.Fatalf("area %v not compatible with region %d at %v", fc.Rect, ri, sol.Regions[ri])
		}
	}
}

// TestMultiRegionFCWidening: a DSP region and a BRAM region can only
// share a signature by widening both over the D..B column span — a
// solution the width-minimal candidate set alone would miss. This guards
// the EnumerateAllCandidates path.
func TestMultiRegionFCWidening(t *testing.T) {
	p := &core.Problem{
		Device: multiDevice(),
		Regions: []core.Region{
			{Name: "A", Req: device.Requirements{device.ClassCLB: 2, device.ClassDSP: 1}},
			{Name: "B", Req: device.Requirements{device.ClassCLB: 2, device.ClassBRAM: 1}},
		},
		FCAreas: []core.FCRequest{
			{Region: 0, AlsoCompatible: []int{1}, Mode: core.RelocConstraint},
		},
		Objective: core.DefaultObjective(),
	}
	sol, err := (&Engine{}).Solve(context.Background(), p, core.SolveOptions{TimeLimit: 60 * time.Second})
	if err != nil {
		t.Fatalf("feasible instance reported %v (width-minimal completeness gap?)", err)
	}
	if err := sol.Validate(p); err != nil {
		t.Fatal(err)
	}
	for ri := range p.Regions {
		if !p.Device.Compatible(sol.Regions[ri], sol.FC[0].Rect) {
			t.Fatalf("area not compatible with region %d", ri)
		}
	}
}

// TestMultiRegionFCInfeasible: with 2-tile DSP and BRAM needs, a shared
// signature needs height-2 windows over the unique D..B span at x=9, of
// which only two disjoint ones exist — region A, region B and their
// shared area cannot all fit.
func TestMultiRegionFCInfeasible(t *testing.T) {
	p := &core.Problem{
		Device: multiDevice(),
		Regions: []core.Region{
			{Name: "A", Req: device.Requirements{device.ClassCLB: 4, device.ClassDSP: 2}},
			{Name: "B", Req: device.Requirements{device.ClassCLB: 4, device.ClassBRAM: 2}},
		},
		FCAreas: []core.FCRequest{
			{Region: 0, AlsoCompatible: []int{1}, Mode: core.RelocConstraint},
		},
		Objective: core.DefaultObjective(),
	}
	_, err := (&Engine{}).Solve(context.Background(), p, core.SolveOptions{TimeLimit: 60 * time.Second})
	if !errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("err = %v, want infeasible", err)
	}
	// The same request in metric mode degrades to a miss.
	p.FCAreas[0].Mode = core.RelocMetric
	sol, err := (&Engine{}).Solve(context.Background(), p, core.SolveOptions{TimeLimit: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Validate(p); err != nil {
		t.Fatal(err)
	}
	if sol.Metrics(p).RelocationMiss != 1 {
		t.Fatalf("miss = %g, want 1", sol.Metrics(p).RelocationMiss)
	}
}

// TestMultiRegionDedup: duplicated entries in AlsoCompatible collapse.
func TestMultiRegionDedup(t *testing.T) {
	req := core.FCRequest{Region: 1, AlsoCompatible: []int{1, 0, 0}}
	got := req.CompatRegions()
	if len(got) != 2 || got[0] != 1 || got[1] != 0 {
		t.Fatalf("compat regions = %v", got)
	}
}
