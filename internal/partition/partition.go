// Package partition implements the revised FPGA partitioning procedure of
// Section III of the paper ("columnar partitioning"): the device is cut
// into columnar portions — maximal rectangles of same-type tiles spanning
// the entire device height — while hard blocks remain as forbidden areas
// overlapping the portions.
//
// The resulting Partitioning enjoys the two properties the MILP extension
// relies on: adjacent portions always have different tile types
// (Property .3) and portions can be ordered left to right (Property .4).
package partition

import (
	"errors"
	"fmt"

	"repro/internal/device"
	"repro/internal/grid"
)

// ErrNotColumnar is returned when the device cannot be columnar
// partitioned (step 4 of the procedure fails: after forbidden-tile
// replacement some column is not uniform in tile type).
var ErrNotColumnar = errors.New("partition: device cannot be columnar partitioned")

// Portion is a fixed rectangular area of the FPGA containing tiles of a
// single type and extending over the full device height.
type Portion struct {
	// Index is the 0-based left-to-right portion number (Property .4).
	Index int
	// X1 and X2 are the leftmost and rightmost columns of the portion,
	// both inclusive, matching the paper's xa1/xa2 convention.
	X1, X2 int
	// Type is the tile type filling the portion.
	Type device.TypeID
}

// Width returns the number of columns spanned by the portion.
func (p Portion) Width() int { return p.X2 - p.X1 + 1 }

// Rect returns the portion's rectangle on a device of height h.
func (p Portion) Rect(h int) grid.Rect {
	return grid.Rect{X: p.X1, Y: 0, W: p.Width(), H: h}
}

func (p Portion) String() string {
	return fmt.Sprintf("P%d[cols %d..%d, type %d]", p.Index, p.X1, p.X2, p.Type)
}

// Partitioning is the result of columnar-partitioning a device: the set P
// of columnar portions plus the set A of forbidden areas (disjoint from P
// in the formulation sense — portions cover the device entirely and the
// forbidden areas overlap them).
type Partitioning struct {
	Device    *device.Device
	Portions  []Portion
	Forbidden []grid.Rect

	colPortion []int // column -> portion index
}

// Columnar runs the revised partitioning procedure on d:
//
//  1. every tile belonging to a forbidden area is replaced by a
//     non-forbidden tile of the same column;
//  2. remaining tiles are scanned top-to-bottom, left-to-right, greedily
//     growing same-type rectangles right and then down;
//  3. a portion that cannot be extended to the device bottom makes the
//     device non-columnar-partitionable (ErrNotColumnar);
//  4. forbidden areas are reported by position and size.
func Columnar(d *device.Device) (*Partitioning, error) {
	w := d.Width()

	// Step 1: effective type per column after forbidden-tile replacement.
	colType := make([]device.TypeID, w)
	for c := 0; c < w; c++ {
		t, err := effectiveColumnType(d, c)
		if err != nil {
			return nil, err
		}
		colType[c] = t
	}

	// Steps 2-5: on a column-uniform grid the greedy growth yields the
	// maximal runs of equal-type columns, each spanning the full height.
	var portions []Portion
	colPortion := make([]int, w)
	for c := 0; c < w; {
		start := c
		t := colType[c]
		for c < w && colType[c] == t {
			c++
		}
		idx := len(portions)
		portions = append(portions, Portion{Index: idx, X1: start, X2: c - 1, Type: t})
		for cc := start; cc < c; cc++ {
			colPortion[cc] = idx
		}
	}

	p := &Partitioning{
		Device:     d,
		Portions:   portions,
		Forbidden:  append([]grid.Rect(nil), d.Forbidden()...),
		colPortion: colPortion,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// effectiveColumnType returns the uniform tile type of column c after the
// forbidden-tile replacement of step 1, or an error when the column's
// non-forbidden tiles disagree (the device is not columnar) or the whole
// column is forbidden.
func effectiveColumnType(d *device.Device, c int) (device.TypeID, error) {
	var t device.TypeID
	found := false
	for r := 0; r < d.Height(); r++ {
		if d.InForbidden(c, r) {
			continue
		}
		ct := d.TypeAt(c, r)
		if !found {
			t, found = ct, true
			continue
		}
		if ct != t {
			return 0, fmt.Errorf("%w: column %d mixes tile types %d and %d", ErrNotColumnar, c, t, ct)
		}
	}
	if !found {
		return 0, fmt.Errorf("%w: column %d is entirely forbidden", ErrNotColumnar, c)
	}
	return t, nil
}

// NumPortions returns |P|.
func (p *Partitioning) NumPortions() int { return len(p.Portions) }

// PortionOfColumn returns the portion containing column c.
func (p *Partitioning) PortionOfColumn(c int) Portion {
	return p.Portions[p.colPortion[c]]
}

// PortionIndexOfColumn returns the index of the portion containing column c.
func (p *Partitioning) PortionIndexOfColumn(c int) int { return p.colPortion[c] }

// TypeSequence returns the portion tile-type sequence tid_p, left to right.
func (p *Partitioning) TypeSequence() []device.TypeID {
	out := make([]device.TypeID, len(p.Portions))
	for i, por := range p.Portions {
		out[i] = por.Type
	}
	return out
}

// PortionsCovered returns the portion indices whose column span intersects
// the x-interval [x, x+w).
func (p *Partitioning) PortionsCovered(x, w int) []int {
	var out []int
	for _, por := range p.Portions {
		if x < por.X2+1 && por.X1 < x+w {
			out = append(out, por.Index)
		}
	}
	return out
}

// OverlapColumns returns the number of columns shared between the
// x-interval [x, x+w) and portion idx.
func (p *Partitioning) OverlapColumns(x, w, idx int) int {
	por := p.Portions[idx]
	return grid.Interval{Lo: x, Hi: x + w}.Overlap(grid.Interval{Lo: por.X1, Hi: por.X2 + 1})
}

// Validate checks the construction invariants: portions are non-empty,
// ordered, disjoint, cover every column exactly once, have uniform
// effective type, and adjacent portions have different types
// (Properties .3 and .4).
func (p *Partitioning) Validate() error {
	w := p.Device.Width()
	covered := make([]bool, w)
	prevEnd := -1
	for i, por := range p.Portions {
		if por.Index != i {
			return fmt.Errorf("partition: portion %d has index %d", i, por.Index)
		}
		if por.X1 > por.X2 {
			return fmt.Errorf("partition: portion %d is empty (%d..%d)", i, por.X1, por.X2)
		}
		if por.X1 != prevEnd+1 {
			return fmt.Errorf("partition: portion %d starts at %d, want %d", i, por.X1, prevEnd+1)
		}
		prevEnd = por.X2
		if i > 0 && p.Portions[i-1].Type == por.Type {
			return fmt.Errorf("partition: adjacent portions %d and %d share type %d (Property .3 violated)", i-1, i, por.Type)
		}
		for c := por.X1; c <= por.X2; c++ {
			if c < 0 || c >= w {
				return fmt.Errorf("partition: portion %d column %d out of range", i, c)
			}
			if covered[c] {
				return fmt.Errorf("partition: column %d covered twice", c)
			}
			covered[c] = true
			t, err := effectiveColumnType(p.Device, c)
			if err != nil {
				return err
			}
			if t != por.Type {
				return fmt.Errorf("partition: column %d has type %d, portion %d claims %d", c, t, i, por.Type)
			}
		}
	}
	if prevEnd != w-1 {
		return fmt.Errorf("partition: portions cover columns up to %d, device has %d", prevEnd, w)
	}
	return nil
}
