package partition

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/device"
	"repro/internal/grid"
)

func TestColumnarFX70T(t *testing.T) {
	d := device.VirtexFX70T()
	p, err := Columnar(d)
	if err != nil {
		t.Fatal(err)
	}
	// Columns: C*3 B C*4 D C*4 B C*9 B C*4 D C*4 B C*7 -> 13 portions.
	if p.NumPortions() != 13 {
		t.Fatalf("portions = %d, want 13", p.NumPortions())
	}
	if len(p.Forbidden) != 1 {
		t.Fatalf("forbidden = %d, want 1", len(p.Forbidden))
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestFigure2Partitioning mirrors the Figure 2 walkthrough: the hard
// blocks become forbidden areas and the fabric is cut into columnar
// portions ordered left to right.
func TestFigure2Partitioning(t *testing.T) {
	d := device.Figure2Device()
	p, err := Columnar(d)
	if err != nil {
		t.Fatal(err)
	}
	// Columns: blue x2, green, blue, orange, blue x2, green, blue x3, orange.
	// Runs: [0,1] [2] [3] [4] [5,6] [7] [8,9,10] [11] = 8 portions.
	if p.NumPortions() != 8 {
		t.Fatalf("portions = %d, want 8", p.NumPortions())
	}
	if len(p.Forbidden) != 2 {
		t.Fatalf("forbidden = %d, want 2 (f1, f2)", len(p.Forbidden))
	}
	// Property .4: ordered left to right.
	for i := 1; i < p.NumPortions(); i++ {
		if p.Portions[i].X1 != p.Portions[i-1].X2+1 {
			t.Fatalf("portion %d not adjacent to predecessor", i)
		}
	}
	// Property .3: adjacent portions differ in type.
	for i := 1; i < p.NumPortions(); i++ {
		if p.Portions[i].Type == p.Portions[i-1].Type {
			t.Fatalf("portions %d and %d share a type", i-1, i)
		}
	}
}

func TestForbiddenReplacementUsesColumnType(t *testing.T) {
	// A device whose forbidden block covers tiles typed differently from
	// the rest of the column: step 1 must replace them with the column's
	// non-forbidden type.
	types := []device.TileType{
		{Name: "clb", Class: device.ClassCLB, Frames: 4},
		{Name: "ppc", Class: device.ClassIO, Frames: 1},
	}
	cells := []device.TypeID{
		0, 0, 0,
		0, 1, 0,
		0, 0, 0,
	}
	d, err := device.New("hardblock", 3, 3, types, cells,
		[]grid.Rect{{X: 1, Y: 1, W: 1, H: 1}})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Columnar(d)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumPortions() != 1 {
		t.Fatalf("portions = %d, want 1 (whole fabric is CLB after replacement)", p.NumPortions())
	}
	if p.Portions[0].Type != 0 {
		t.Fatalf("portion type = %d, want CLB", p.Portions[0].Type)
	}
}

func TestNonColumnarRejected(t *testing.T) {
	types := []device.TileType{
		{Name: "a", Class: device.ClassCLB, Frames: 1},
		{Name: "b", Class: device.ClassBRAM, Frames: 1},
	}
	cells := []device.TypeID{
		0, 1,
		1, 0,
	}
	d, err := device.New("checker", 2, 2, types, cells, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Columnar(d); !errors.Is(err, ErrNotColumnar) {
		t.Fatalf("err = %v, want ErrNotColumnar", err)
	}
}

func TestFullyForbiddenColumnRejected(t *testing.T) {
	types := []device.TileType{{Name: "a", Class: device.ClassCLB, Frames: 1}}
	d, err := device.New("blocked", 2, 2, types,
		[]device.TypeID{0, 0, 0, 0},
		[]grid.Rect{{X: 0, Y: 0, W: 1, H: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Columnar(d); !errors.Is(err, ErrNotColumnar) {
		t.Fatalf("err = %v, want ErrNotColumnar", err)
	}
}

func TestPortionLookups(t *testing.T) {
	d := device.VirtexFX70T()
	p, err := Columnar(d)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < d.Width(); c++ {
		por := p.PortionOfColumn(c)
		if c < por.X1 || c > por.X2 {
			t.Fatalf("column %d mapped to portion %v", c, por)
		}
		if p.PortionIndexOfColumn(c) != por.Index {
			t.Fatalf("index lookup mismatch at column %d", c)
		}
	}
	seq := p.TypeSequence()
	if len(seq) != p.NumPortions() {
		t.Fatalf("type sequence length %d", len(seq))
	}
}

func TestPortionsCoveredAndOverlap(t *testing.T) {
	d := device.VirtexFX70T()
	p, err := Columnar(d)
	if err != nil {
		t.Fatal(err)
	}
	// Columns 4..9 intersect the portions containing columns 4-7 (CLB),
	// 8 (DSP) and 9-12 (CLB): exactly 3 portions.
	covered := p.PortionsCovered(4, 6)
	if len(covered) != 3 {
		t.Fatalf("covered = %v, want 3 portions", covered)
	}
	total := 0
	for _, idx := range covered {
		total += p.OverlapColumns(4, 6, idx)
	}
	if total != 6 {
		t.Fatalf("overlap columns sum = %d, want 6", total)
	}
	// Portions covered must be contiguous (columnar geometry).
	for i := 1; i < len(covered); i++ {
		if covered[i] != covered[i-1]+1 {
			t.Fatalf("covered portions not contiguous: %v", covered)
		}
	}
}

// TestQuickPartitionInvariants: any generated columnar device partitions
// into a valid partitioning whose portions tile the column axis.
func TestQuickPartitionInvariants(t *testing.T) {
	f := func(seed int64, w8, h8 uint8) bool {
		w := 5 + int(w8%60)
		h := 2 + int(h8%10)
		d := device.MustGenerate(device.GeneratorConfig{
			Width: w, Height: h,
			BRAMEvery: 5, DSPEvery: 9,
			ForbiddenBlocks: 2, ForbiddenMaxH: h - 1,
			Seed: seed,
		})
		p, err := Columnar(d)
		if err != nil {
			// Only acceptable failure: a fully forbidden column.
			return errors.Is(err, ErrNotColumnar)
		}
		if p.Validate() != nil {
			return false
		}
		// Portion column map is total and consistent.
		for c := 0; c < w; c++ {
			por := p.PortionOfColumn(c)
			if c < por.X1 || c > por.X2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPortionRectAndString(t *testing.T) {
	p := Portion{Index: 2, X1: 4, X2: 7, Type: 1}
	if p.Width() != 4 {
		t.Fatalf("width = %d", p.Width())
	}
	r := p.Rect(8)
	want := grid.Rect{X: 4, Y: 0, W: 4, H: 8}
	if r != want {
		t.Fatalf("rect = %v, want %v", r, want)
	}
	if p.String() == "" {
		t.Fatal("empty String()")
	}
}
