package seqpair

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/grid"
)

func TestValidate(t *testing.T) {
	good := Pair{S1: []int{2, 0, 1}, S2: []int{0, 1, 2}}
	if err := good.Validate(3); err != nil {
		t.Fatal(err)
	}
	bad := Pair{S1: []int{0, 0, 1}, S2: []int{0, 1, 2}}
	if err := bad.Validate(3); err == nil {
		t.Fatal("duplicate entry accepted")
	}
	short := Pair{S1: []int{0}, S2: []int{0}}
	if err := short.Validate(2); err == nil {
		t.Fatal("wrong length accepted")
	}
}

func TestRelationConvention(t *testing.T) {
	// S1 = (a b), S2 = (a b): a left of b.
	p := Pair{S1: []int{0, 1}, S2: []int{0, 1}}
	if p.Relation(0, 1) != Left {
		t.Fatalf("relation = %v, want left", p.Relation(0, 1))
	}
	if p.Relation(1, 0) != Right {
		t.Fatalf("inverse relation = %v, want right", p.Relation(1, 0))
	}
	// S1 = (a b), S2 = (b a): a above b.
	p = Pair{S1: []int{0, 1}, S2: []int{1, 0}}
	if p.Relation(0, 1) != Above {
		t.Fatalf("relation = %v, want above", p.Relation(0, 1))
	}
	if p.Relation(1, 0) != Below {
		t.Fatalf("inverse relation = %v, want below", p.Relation(1, 0))
	}
}

func TestFromPlacementSimple(t *testing.T) {
	rects := []grid.Rect{
		{X: 0, Y: 0, W: 2, H: 2}, // 0: top-left
		{X: 3, Y: 0, W: 2, H: 2}, // 1: right of 0
		{X: 0, Y: 3, W: 2, H: 2}, // 2: below 0
	}
	p, err := FromPlacement(rects)
	if err != nil {
		t.Fatal(err)
	}
	if !p.ConsistentWith(rects) {
		t.Fatalf("extracted pair %+v not consistent with source placement", p)
	}
	if p.Relation(0, 1) != Left {
		t.Fatalf("0 vs 1 = %v", p.Relation(0, 1))
	}
	// 0 and 2 are disjoint on both axes? No: x-ranges overlap, so above.
	if p.Relation(0, 2) != Above {
		t.Fatalf("0 vs 2 = %v", p.Relation(0, 2))
	}
}

func TestFromPlacementPinwheel(t *testing.T) {
	// The classic pinwheel packing that defeats naive relation orders.
	rects := []grid.Rect{
		{X: 0, Y: 0, W: 2, H: 1},
		{X: 2, Y: 0, W: 1, H: 2},
		{X: 1, Y: 2, W: 2, H: 1},
		{X: 0, Y: 1, W: 1, H: 2},
	}
	p, err := FromPlacement(rects)
	if err != nil {
		t.Fatal(err)
	}
	if !p.ConsistentWith(rects) {
		t.Fatalf("pair %+v inconsistent with pinwheel", p)
	}
}

func TestFromPlacementOverlapRejected(t *testing.T) {
	rects := []grid.Rect{
		{X: 0, Y: 0, W: 3, H: 3},
		{X: 1, Y: 1, W: 3, H: 3},
	}
	if _, err := FromPlacement(rects); err == nil {
		t.Fatal("overlapping rects accepted")
	}
}

// randomPacking builds a random set of disjoint rectangles by rejection
// sampling on a grid.
func randomPacking(rng *rand.Rand, n, w, h int) []grid.Rect {
	var out []grid.Rect
	for tries := 0; len(out) < n && tries < 500; tries++ {
		r := grid.Rect{
			X: rng.Intn(w), Y: rng.Intn(h),
			W: 1 + rng.Intn(5), H: 1 + rng.Intn(4),
		}
		if r.X2() > w || r.Y2() > h {
			continue
		}
		if grid.AnyOverlap(r, out) {
			continue
		}
		out = append(out, r)
	}
	return out
}

// TestQuickExtractionConsistent: extraction from any random packing yields
// a valid pair whose relations the packing satisfies.
func TestQuickExtractionConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rects := randomPacking(rng, 2+rng.Intn(8), 30, 12)
		if len(rects) < 2 {
			return true
		}
		p, err := FromPlacement(rects)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if p.Validate(len(rects)) != nil {
			return false
		}
		return p.ConsistentWith(rects)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickConsistencyImpliesDisjoint: any placement consistent with a
// pair is overlap-free (the property HO relies on to drop the
// non-overlap binaries).
func TestQuickConsistencyImpliesDisjoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rects := randomPacking(rng, 2+rng.Intn(6), 25, 10)
		if len(rects) < 2 {
			return true
		}
		p, err := FromPlacement(rects)
		if err != nil {
			return false
		}
		// Perturb into arbitrary rects; if still consistent, must be disjoint.
		pert := make([]grid.Rect, len(rects))
		for i, r := range rects {
			pert[i] = grid.Rect{
				X: r.X + rng.Intn(3) - 1, Y: r.Y + rng.Intn(3) - 1,
				W: r.W, H: r.H,
			}
		}
		if p.ConsistentWith(pert) && !grid.Disjoint(pert) {
			t.Logf("seed %d: consistent but overlapping", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestRelationsEnumeration(t *testing.T) {
	p := Pair{S1: []int{0, 1, 2}, S2: []int{2, 0, 1}}
	count := 0
	p.Relations(3, func(i, j int, rel Rel) {
		count++
		if rel != p.Relation(i, j) {
			t.Fatalf("Relations(%d,%d) = %v, Relation = %v", i, j, rel, p.Relation(i, j))
		}
	})
	if count != 3 {
		t.Fatalf("enumerated %d pairs, want 3", count)
	}
}

func TestRelString(t *testing.T) {
	for _, r := range []Rel{Left, Right, Above, Below} {
		if r.String() == "?" {
			t.Fatalf("missing String for %d", r)
		}
	}
}
