// Package seqpair implements the sequence-pair representation of a
// floorplan (Murata et al.), used by the paper's HO (Heuristic-Optimal)
// algorithm: the sequence pair of a heuristic solution is extracted and
// added as a constraint to the MILP so that only placements consistent
// with the pair's relative-position relations are explored.
//
// Convention: for modules i and j,
//
//	i before j in both S1 and S2  =>  i is left of j,
//	i before j in S1, after in S2 =>  i is above j.
package seqpair

import (
	"fmt"

	"repro/internal/grid"
)

// Rel is the relative position of module i with respect to module j
// encoded by a sequence pair.
type Rel int

// Relations derivable from a sequence pair.
const (
	Left Rel = iota
	Right
	Above
	Below
)

func (r Rel) String() string {
	switch r {
	case Left:
		return "left-of"
	case Right:
		return "right-of"
	case Above:
		return "above"
	case Below:
		return "below"
	}
	return "?"
}

// Pair is a sequence pair over n modules: two permutations of 0..n-1.
type Pair struct {
	S1, S2 []int
}

// Validate checks that both sequences are permutations of 0..n-1.
func (p Pair) Validate(n int) error {
	for name, s := range map[string][]int{"S1": p.S1, "S2": p.S2} {
		if len(s) != n {
			return fmt.Errorf("seqpair: %s has length %d, want %d", name, len(s), n)
		}
		seen := make([]bool, n)
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return fmt.Errorf("seqpair: %s is not a permutation of 0..%d", name, n-1)
			}
			seen[v] = true
		}
	}
	return nil
}

// positions returns pos[i] = index of module i in s.
func positions(s []int) []int {
	pos := make([]int, len(s))
	for idx, v := range s {
		pos[v] = idx
	}
	return pos
}

// Relation returns the relative position of module i with respect to j.
func (p Pair) Relation(i, j int) Rel {
	p1 := positions(p.S1)
	p2 := positions(p.S2)
	return relation(p1, p2, i, j)
}

func relation(p1, p2 []int, i, j int) Rel {
	before1 := p1[i] < p1[j]
	before2 := p2[i] < p2[j]
	switch {
	case before1 && before2:
		return Left
	case !before1 && !before2:
		return Right
	case before1 && !before2:
		return Above
	default:
		return Below
	}
}

// FromPlacement extracts a sequence pair consistent with a set of
// pairwise-disjoint rectangles, using the transitive-constraint-graph
// rule: a pure horizontal relation (x-disjoint with overlapping y
// projections) constrains both sequences, a pure vertical relation
// (y-disjoint with overlapping x projections) constrains S1 one way and
// S2 the other, and a doubly-disjoint ("diagonal") pair constrains only
// the sequence where its two readings agree — the other sequence is free,
// and whichever order the topological sort picks yields a relation the
// placement satisfies. This avoids the cycles that a naive
// "horizontal takes precedence" extraction can create (e.g. pinwheels
// with diagonal pairs).
func FromPlacement(rects []grid.Rect) (Pair, error) {
	n := len(rects)
	// e1[i][j]: i must precede j in S1; e2 likewise for S2.
	e1 := make([][]bool, n)
	e2 := make([][]bool, n)
	for i := range e1 {
		e1[i] = make([]bool, n)
		e2[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a, b := rects[i], rects[j]
			xDisjointIJ := a.X2() <= b.X // i left of j
			xDisjointJI := b.X2() <= a.X
			yDisjointIJ := a.Y2() <= b.Y // i above j
			yDisjointJI := b.Y2() <= a.Y
			switch {
			case xDisjointIJ && yDisjointIJ:
				// i up-left of j: both readings put i before j in S1.
				e1[i][j] = true
			case xDisjointIJ && yDisjointJI:
				// i down-left of j: both readings put i before j in S2.
				e2[i][j] = true
			case xDisjointJI && yDisjointIJ:
				e2[j][i] = true
			case xDisjointJI && yDisjointJI:
				e1[j][i] = true
			case xDisjointIJ:
				// Pure left: i before j in both sequences.
				e1[i][j], e2[i][j] = true, true
			case xDisjointJI:
				e1[j][i], e2[j][i] = true, true
			case yDisjointIJ:
				// Pure above: i before j in S1, after in S2.
				e1[i][j], e2[j][i] = true, true
			case yDisjointJI:
				e1[j][i], e2[i][j] = true, true
			default:
				return Pair{}, fmt.Errorf("seqpair: rectangles %d %v and %d %v overlap", i, a, j, b)
			}
		}
	}
	s1, err := topo(n, func(i, j int) bool { return e1[i][j] })
	if err != nil {
		return Pair{}, fmt.Errorf("seqpair: S1 %w", err)
	}
	s2, err := topo(n, func(i, j int) bool { return e2[i][j] })
	if err != nil {
		return Pair{}, fmt.Errorf("seqpair: S2 %w", err)
	}
	p := Pair{S1: s1, S2: s2}
	if !p.ConsistentWith(rects) {
		return Pair{}, fmt.Errorf("seqpair: extraction produced an inconsistent pair (placement bug)")
	}
	return p, nil
}

// topo returns a deterministic topological order of 0..n-1 under the edge
// predicate (edge(i, j) means i must precede j).
func topo(n int, edge func(i, j int) bool) ([]int, error) {
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && edge(i, j) {
				indeg[j]++
			}
		}
	}
	var order []int
	used := make([]bool, n)
	for len(order) < n {
		pick := -1
		for v := 0; v < n; v++ {
			if !used[v] && indeg[v] == 0 {
				pick = v
				break
			}
		}
		if pick < 0 {
			return nil, fmt.Errorf("relations are cyclic")
		}
		used[pick] = true
		order = append(order, pick)
		for j := 0; j < n; j++ {
			if j != pick && !used[j] && edge(pick, j) {
				indeg[j]--
			}
		}
	}
	return order, nil
}

// ConsistentWith reports whether the rectangles respect every relation of
// the pair: Left(i,j) requires rects[i] entirely left of rects[j], Above
// requires it entirely above.
func (p Pair) ConsistentWith(rects []grid.Rect) bool {
	n := len(rects)
	if p.Validate(n) != nil {
		return false
	}
	p1 := positions(p.S1)
	p2 := positions(p.S2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			switch relation(p1, p2, i, j) {
			case Left:
				if rects[i].X2() > rects[j].X {
					return false
				}
			case Right:
				if rects[j].X2() > rects[i].X {
					return false
				}
			case Above:
				if rects[i].Y2() > rects[j].Y {
					return false
				}
			case Below:
				if rects[j].Y2() > rects[i].Y {
					return false
				}
			}
		}
	}
	return true
}

// Relations enumerates the relation of every ordered pair (i, j), i < j,
// calling fn with the relation of i relative to j.
func (p Pair) Relations(n int, fn func(i, j int, rel Rel)) {
	p1 := positions(p.S1)
	p2 := positions(p.S2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			fn(i, j, relation(p1, p2, i, j))
		}
	}
}
