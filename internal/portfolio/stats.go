package portfolio

import (
	"sort"
	"sync"
	"time"
)

// MemberStats is one member's cumulative race record.
type MemberStats struct {
	// Name is the member engine's Name().
	Name string
	// Races counts completed runs (failed or not) observed by the race
	// collector; abandoned stragglers are not counted.
	Races int64
	// Wins counts races this member's solution won.
	Wins int64
	// Failures counts runs that returned an error.
	Failures int64
	// Total is the summed member wall-clock over all counted runs.
	Total time.Duration
}

// Stats aggregates per-member race counters; safe for concurrent use.
// The daemon exposes a Snapshot of the process-wide Shared() recorder on
// /metrics.
type Stats struct {
	mu sync.Mutex
	m  map[string]*MemberStats
}

// NewStats returns an empty recorder.
func NewStats() *Stats { return &Stats{m: make(map[string]*MemberStats)} }

var shared = NewStats()

// Shared returns the process-wide recorder used by portfolio engines
// built through New (and thus by the facade and the daemon).
func Shared() *Stats { return shared }

func (s *Stats) member(name string) *MemberStats {
	ms, ok := s.m[name]
	if !ok {
		ms = &MemberStats{Name: name}
		s.m[name] = ms
	}
	return ms
}

func (s *Stats) recordRun(name string, elapsed time.Duration, err error) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ms := s.member(name)
	ms.Races++
	ms.Total += elapsed
	if err != nil {
		ms.Failures++
	}
}

func (s *Stats) recordWin(name string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.member(name).Wins++
}

// Snapshot returns the current counters sorted by member name.
func (s *Stats) Snapshot() []MemberStats {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]MemberStats, 0, len(s.m))
	for _, ms := range s.m {
		out = append(out, *ms)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
