package portfolio

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/grid"
)

// testProblem mirrors the core package's fixture: two regions and one net
// on the Virtex-5 FX70T, small enough that solutions can be written by
// hand and validated for real.
func testProblem() *core.Problem {
	return &core.Problem{
		Device: device.VirtexFX70T(),
		Regions: []core.Region{
			{Name: "A", Req: device.Requirements{device.ClassCLB: 25, device.ClassDSP: 5}},
			{Name: "B", Req: device.Requirements{device.ClassCLB: 5, device.ClassBRAM: 2}},
		},
		Nets:      []core.Net{{A: 0, B: 1, Weight: 64}},
		Objective: core.DefaultObjective(),
	}
}

// nearSolution places B next to A (short net).
func nearSolution() *core.Solution {
	return &core.Solution{
		Regions: []grid.Rect{
			{X: 4, Y: 0, W: 6, H: 5},
			{X: 10, Y: 0, W: 4, H: 2},
		},
		FC: []core.FCPlacement{},
	}
}

// farSolution places B at the bottom edge (long net, worse objective).
func farSolution() *core.Solution {
	return &core.Solution{
		Regions: []grid.Rect{
			{X: 4, Y: 0, W: 6, H: 5},
			{X: 10, Y: 6, W: 4, H: 2},
		},
		FC: []core.FCPlacement{},
	}
}

// stub is a scripted member engine: it waits delay (honoring ctx), then
// returns its canned result. A non-nil canceled channel is closed when the
// stub observes cancellation, letting tests assert losers were stopped.
type stub struct {
	name     string
	sol      *core.Solution
	err      error
	delay    time.Duration
	canceled chan struct{}
}

func (s *stub) Name() string { return s.name }

func (s *stub) Solve(ctx context.Context, p *core.Problem, opts core.SolveOptions) (*core.Solution, error) {
	if s.delay > 0 {
		t := time.NewTimer(s.delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			if s.canceled != nil {
				close(s.canceled)
			}
			return nil, ctx.Err()
		}
	}
	if s.err != nil {
		return nil, s.err
	}
	cp := *s.sol
	return &cp, nil
}

func TestPortfolioPicksBestObjective(t *testing.T) {
	p := testProblem()
	near, far := nearSolution(), farSolution()
	if near.Objective(p) >= far.Objective(p) {
		t.Fatalf("fixture broken: near objective %v !< far objective %v", near.Objective(p), far.Objective(p))
	}
	pf := &Portfolio{Members: []Member{
		{Engine: &stub{name: "worse", sol: far}},
		{Engine: &stub{name: "better", sol: near, delay: 20 * time.Millisecond}},
	}}
	sol, err := pf.Solve(context.Background(), p, core.SolveOptions{TimeLimit: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Engine != "portfolio(better)" {
		t.Fatalf("winner = %q, want portfolio(better)", sol.Engine)
	}
	if got := sol.Objective(p); got != near.Objective(p) {
		t.Fatalf("objective = %v, want the better member's %v", got, near.Objective(p))
	}
}

func TestPortfolioProvenWinnerCancelsLosers(t *testing.T) {
	p := testProblem()
	proven := nearSolution()
	proven.Proven = true
	loserCanceled := make(chan struct{})
	pf := &Portfolio{Members: []Member{
		{Engine: &stub{name: "fast", sol: proven}},
		{Engine: &stub{name: "slow", sol: farSolution(), delay: time.Minute, canceled: loserCanceled}},
	}}
	start := time.Now()
	sol, err := pf.Solve(context.Background(), p, core.SolveOptions{TimeLimit: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("proven winner did not short-circuit the race: %s", elapsed)
	}
	if sol.Engine != "portfolio(fast)" {
		t.Fatalf("winner = %q, want portfolio(fast)", sol.Engine)
	}
	select {
	case <-loserCanceled:
	case <-time.After(5 * time.Second):
		t.Fatal("loser was never canceled")
	}
}

func TestPortfolioTrustedInfeasibleBeatsBudgetFailure(t *testing.T) {
	p := testProblem()
	pf := &Portfolio{Members: []Member{
		{Engine: &stub{name: "exactish", err: core.ErrInfeasible}, TrustInfeasible: true},
		{Engine: &stub{name: "heur", err: core.ErrNoSolution}},
	}}
	_, err := pf.Solve(context.Background(), p, core.SolveOptions{TimeLimit: time.Second})
	if !errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible from the trusted member", err)
	}
}

func TestPortfolioUntrustedInfeasibleDegrades(t *testing.T) {
	p := testProblem()
	pf := &Portfolio{Members: []Member{
		{Engine: &stub{name: "heur", err: core.ErrInfeasible}},
	}}
	_, err := pf.Solve(context.Background(), p, core.SolveOptions{TimeLimit: time.Second})
	if errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("an untrusted infeasibility claim must not surface as a proof (err = %v)", err)
	}
	if !errors.Is(err, core.ErrNoSolution) {
		t.Fatalf("err = %v, want ErrNoSolution", err)
	}
}

func TestPortfolioInfeasibleBeatsOtherErrors(t *testing.T) {
	p := testProblem()
	pf := &Portfolio{Members: []Member{
		{Engine: &stub{name: "broken", err: errors.New("disk on fire")}},
		{Engine: &stub{name: "exactish", err: core.ErrInfeasible, delay: 10 * time.Millisecond}, TrustInfeasible: true},
	}}
	_, err := pf.Solve(context.Background(), p, core.SolveOptions{TimeLimit: time.Second})
	if !errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible to outrank a member crash", err)
	}
}

func TestPortfolioReportsMemberErrors(t *testing.T) {
	p := testProblem()
	pf := &Portfolio{Members: []Member{
		{Engine: &stub{name: "broken", err: errors.New("disk on fire")}},
	}}
	_, err := pf.Solve(context.Background(), p, core.SolveOptions{TimeLimit: time.Second})
	if err == nil || !strings.Contains(err.Error(), "broken") {
		t.Fatalf("err = %v, want the failing member named", err)
	}
}

func TestPortfolioRejectsInvalidSolution(t *testing.T) {
	p := testProblem()
	overlapping := &core.Solution{
		Regions: []grid.Rect{
			{X: 4, Y: 0, W: 6, H: 5},
			{X: 4, Y: 0, W: 6, H: 5}, // overlaps region A and lacks B's BRAM
		},
		FC: []core.FCPlacement{},
	}
	pf := &Portfolio{Members: []Member{
		{Engine: &stub{name: "cheater", sol: overlapping}},
		{Engine: &stub{name: "honest", sol: nearSolution(), delay: 20 * time.Millisecond}},
	}}
	sol, err := pf.Solve(context.Background(), p, core.SolveOptions{TimeLimit: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Engine != "portfolio(honest)" {
		t.Fatalf("winner = %q, want portfolio(honest): an invalid floorplan must not win", sol.Engine)
	}
}

func TestPortfolioStats(t *testing.T) {
	p := testProblem()
	st := NewStats()
	proven := nearSolution()
	proven.Proven = true
	pf := &Portfolio{
		Members: []Member{
			{Engine: &stub{name: "winner", sol: proven}},
			{Engine: &stub{name: "loser", err: core.ErrNoSolution}},
		},
		Stats: st,
	}
	if _, err := pf.Solve(context.Background(), p, core.SolveOptions{TimeLimit: time.Second}); err != nil {
		t.Fatal(err)
	}
	snap := st.Snapshot()
	byName := make(map[string]MemberStats, len(snap))
	for _, m := range snap {
		byName[m.Name] = m
	}
	w, l := byName["winner"], byName["loser"]
	if w.Races != 1 || w.Wins != 1 || w.Failures != 0 {
		t.Fatalf("winner stats = %+v, want 1 race, 1 win", w)
	}
	if l.Races != 1 || l.Wins != 0 || l.Failures != 1 {
		t.Fatalf("loser stats = %+v, want 1 race, 1 failure", l)
	}
}

func TestDefaultMembersTrustOnlyFullSpaceEngines(t *testing.T) {
	// Only the exact engine searches the full space among the defaults;
	// milp-ho's MILP is restricted to its seed's sequence pair, so
	// trusting its infeasibility verdicts would turn heuristic give-ups
	// into false proofs.
	for _, m := range DefaultMembers() {
		want := m.Engine.Name() == "exact"
		if m.TrustInfeasible != want {
			t.Errorf("member %s: TrustInfeasible = %v, want %v", m.Engine.Name(), m.TrustInfeasible, want)
		}
	}
}

func TestPortfolioNilStatsSafe(t *testing.T) {
	p := testProblem()
	pf := &Portfolio{Members: []Member{{Engine: &stub{name: "only", sol: nearSolution()}}}}
	if _, err := pf.Solve(context.Background(), p, core.SolveOptions{TimeLimit: time.Second}); err != nil {
		t.Fatal(err)
	}
}
