// Package portfolio implements an algorithm-portfolio floorplanning
// engine: it races a configurable set of member engines concurrently
// under one shared deadline and returns the best answer any of them
// produces.
//
// The design follows the paper's own evaluation structure (Section VI
// contrasts the optimal MILP flow with fast heuristics under wall-clock
// budgets) and the observation of the follow-up floorplanners (Deak &
// Creț; Goswami & Bhatia) that cheap heuristics often match exact
// solvers on real instances — so the fastest service-grade answer is to
// run both and take whichever finishes best.
//
// Race semantics:
//
//   - Every member gets the same context, problem and SolveOptions (the
//     worker budget is split evenly) and runs in its own goroutine.
//   - A winner is ACCEPTED early in exactly two cases: a member returns a
//     proven-optimal solution (nothing can beat it under the paper's
//     lexicographic objective), or a trusted member proves infeasibility
//     (nothing can exist). Acceptance cancels the losers immediately.
//   - Otherwise the race runs until every member returns or the shared
//     deadline expires, and the best solution by objective cost wins —
//     so the portfolio is never worse than its best member under the
//     same budget.
//   - Member failures rank below solutions: a proven infeasibility from
//     a trusted (exact) member beats any heuristic failure, and
//     heuristic "infeasible" claims — which bounded backtracking cannot
//     actually prove — are degraded to exhausted-budget errors instead
//     of being reported as proofs.
//
// The race depends on the engine deadline contract (every member returns
// promptly once its TimeLimit or context expires); a small grace window
// bounds the wait for stragglers so one misbehaving member cannot stall
// the portfolio past its budget.
package portfolio

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/guard"
	"repro/internal/heuristic"
	"repro/internal/model"
	"repro/internal/obs"
)

// Member is one engine in the race.
type Member struct {
	// Engine computes floorplans; it must honor ctx and TimeLimit.
	Engine core.Engine
	// TrustInfeasible marks engines whose ErrInfeasible is a proof
	// (exact, MILP). Untrusted members' infeasibility claims — e.g. the
	// constructive placer's bounded backtracking giving up — are treated
	// as exhausted budgets, not proofs.
	TrustInfeasible bool
}

// Portfolio races member engines under a shared budget. The zero value
// races DefaultMembers with no stats recording.
type Portfolio struct {
	// Members are the racing engines (empty = DefaultMembers()).
	Members []Member
	// Grace bounds the wait for stragglers after the shared deadline or
	// an accepted winner (0 = 150ms). Members honoring the deadline
	// contract return well within it.
	Grace time.Duration
	// Stats, when non-nil, receives per-member race/win/latency counts.
	Stats *Stats
	// Breakers, when non-nil, gates members through per-engine circuit
	// breakers: a member whose breaker is open sits this race out, and
	// every admitted run records its outcome, so a crash-looping member
	// stops burning race slots until its cooldown probe succeeds.
	Breakers *guard.BreakerSet
}

// New returns a Portfolio over the given members (default set when none
// are given), recording into the process-wide Shared() stats.
func New(members ...Member) *Portfolio {
	return &Portfolio{Members: members, Stats: Shared()}
}

// DefaultMembers is the standard race: the exact engine (the only
// default member whose infeasibility verdicts are proofs), the paper's
// HO flow, and the three fast heuristics. milp-ho is deliberately NOT
// trusted: its MILP is restricted to the seed's sequence pair, so its
// infeasibility verdicts do not extend to the full problem.
func DefaultMembers() []Member {
	return []Member{
		{Engine: &exact.Engine{}, TrustInfeasible: true},
		{Engine: &model.HOEngine{}},
		{Engine: &heuristic.Constructive{}},
		{Engine: &heuristic.Annealing{}},
		{Engine: &heuristic.Tessellation{}},
	}
}

// Name implements core.Engine.
func (pf *Portfolio) Name() string { return "portfolio" }

// outcome is one member's race result.
type outcome struct {
	idx     int
	sol     *core.Solution
	err     error
	elapsed time.Duration
}

// Solve implements core.Engine: it races the members and returns the
// best accepted answer. The returned solution's Engine field names the
// winning member ("portfolio(exact)") so reports and the serving layer
// can attribute it.
func (pf *Portfolio) Solve(ctx context.Context, p *core.Problem, opts core.SolveOptions) (sol *core.Solution, err error) {
	opts = opts.Normalized()
	start := time.Now()
	var deadline time.Time
	if opts.TimeLimit > 0 {
		deadline = start.Add(opts.TimeLimit)
	}
	// Members inherit opts.Probe and open their own engine-named spans;
	// the portfolio's span carries the race-level best trajectory.
	sp := opts.Probe.Span(pf.Name())
	defer func() { sp.End(core.ObsOutcome(sol, err), obs.SlackUntil(deadline)) }()
	if err = p.Validate(); err != nil {
		return nil, err
	}
	members := pf.Members
	if len(members) == 0 {
		members = DefaultMembers()
	}
	grace := pf.Grace
	if grace <= 0 {
		grace = 150 * time.Millisecond
	}
	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	if !deadline.IsZero() {
		// Backstop: members enforce TimeLimit themselves; the context
		// deadline catches any that only watch ctx.
		var cancelD context.CancelFunc
		raceCtx, cancelD = context.WithDeadline(raceCtx, deadline)
		defer cancelD()
	}

	memberOpts := opts
	memberOpts.Workers = opts.Workers / len(members)
	if memberOpts.Workers < 1 {
		memberOpts.Workers = 1
	}

	results := make(chan outcome, len(members))
	launched := 0
	for i, m := range members {
		var br *guard.Breaker
		if pf.Breakers != nil {
			br = pf.Breakers.For(m.Engine.Name())
			if !br.Allow() {
				continue
			}
		}
		launched++
		go func(i int, m Member, br *guard.Breaker) {
			ms := time.Now()
			// Protect isolates member panics: one buggy engine must not
			// take down the whole race (or the serving worker).
			sol, err := guard.Protect(m.Engine.Name(), p, func() (*core.Solution, error) {
				return m.Engine.Solve(raceCtx, p, memberOpts)
			})
			if err == nil && sol == nil {
				err = fmt.Errorf("portfolio: member %s returned nil solution with nil error", m.Engine.Name())
			}
			if err == nil {
				if verr := sol.Validate(p); verr != nil {
					// A member must not win with an illegal floorplan.
					sol, err = nil, fmt.Errorf("portfolio: member %s returned invalid solution: %w", m.Engine.Name(), verr)
				}
			}
			if br != nil {
				br.Record(guard.BreakerOutcomeOf(err))
			}
			results <- outcome{idx: i, sol: sol, err: err, elapsed: time.Since(ms)}
		}(i, m, br)
	}
	if launched == 0 {
		return nil, fmt.Errorf("portfolio: every member's circuit breaker is open: %w", core.ErrNoSolution)
	}

	// stopAt bounds the whole collection; it tightens to now+grace once a
	// winner is accepted (or the deadline passes) so stragglers cannot
	// stall the race.
	var stopTimer *time.Timer
	var stopC <-chan time.Time
	if !deadline.IsZero() {
		stopTimer = time.NewTimer(time.Until(deadline) + grace)
		defer stopTimer.Stop()
		stopC = stopTimer.C
	}
	tighten := func() {
		cancel()
		if stopTimer == nil {
			stopTimer = time.NewTimer(grace)
			stopC = stopTimer.C
			return
		}
		if !stopTimer.Stop() {
			select {
			case <-stopTimer.C:
			default:
			}
		}
		stopTimer.Reset(grace)
	}

	var (
		best       *core.Solution
		bestIdx    = -1
		bestObj    float64
		infeasible error
		budgetErrs int
		otherErrs  []error
		accepted   bool
	)
collect:
	for got := 0; got < launched; got++ {
		var out outcome
		select {
		case out = <-results:
		case <-stopC:
			// Grace expired: abandon stragglers (the buffered channel
			// lets their goroutines finish without leaking).
			break collect
		}
		name := members[out.idx].Engine.Name()
		pf.Stats.recordRun(name, out.elapsed, out.err)
		switch {
		case out.err == nil:
			obj := out.sol.Objective(p)
			if best == nil || obj < bestObj || (obj == bestObj && out.sol.Proven && !best.Proven) {
				best, bestIdx, bestObj = out.sol, out.idx, obj
				sp.Incumbent(obj)
			}
			if out.sol.Proven && !accepted {
				// Proven lexicographic optimum: accept, cancel losers.
				accepted = true
				tighten()
			}
		case errors.Is(out.err, core.ErrInfeasible):
			if members[out.idx].TrustInfeasible {
				infeasible = out.err
				if !accepted {
					accepted = true
					tighten()
				}
			} else {
				budgetErrs++
			}
		case errors.Is(out.err, core.ErrNoSolution),
			errors.Is(out.err, context.DeadlineExceeded),
			errors.Is(out.err, context.Canceled):
			budgetErrs++
		default:
			otherErrs = append(otherErrs, fmt.Errorf("%s: %w", name, out.err))
		}
	}

	if best != nil {
		win := *best
		win.Engine = fmt.Sprintf("portfolio(%s)", members[bestIdx].Engine.Name())
		win.Elapsed = time.Since(start)
		pf.Stats.recordWin(members[bestIdx].Engine.Name())
		return &win, nil
	}
	if infeasible != nil {
		return nil, infeasible
	}
	if budgetErrs > 0 {
		return nil, fmt.Errorf("portfolio: no member found a solution within the budget: %w", core.ErrNoSolution)
	}
	if len(otherErrs) > 0 {
		return nil, errors.Join(otherErrs...)
	}
	return nil, fmt.Errorf("portfolio: all members timed out without reporting: %w", core.ErrNoSolution)
}
