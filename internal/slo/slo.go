// Package slo is the error-budget engine: declarative service-level
// objectives evaluated with multi-window burn-rate rules over sliding
// windows, in the style of the Google SRE workbook's alerting chapter.
//
// An Objective declares what "good" means for a slice of traffic — an
// availability target ("99% of /v1/solve requests succeed over 1h") or
// a latency threshold ("99% of portfolio solves finish within their
// budget plus the contract epsilon over 1h"). A Tracker ingests one
// Sample per served request, buckets good/total counts on a coarse
// time ring, and Evaluate answers the operating questions: how much
// error budget remains in the objective window, how fast is it burning
// over each rule window, and which burn-rate alerts are firing.
//
// Burn rate is the ratio of the observed bad fraction to the budgeted
// bad fraction (1 - target): burn 1 spends exactly the budget over the
// window, burn 14.4 exhausts a 1h budget in ~4 minutes. A rule fires
// only when BOTH its windows exceed the threshold — the long window
// proves the problem is real, the short window proves it is still
// happening — which is what keeps burn-rate alerts precise and fast at
// once.
package slo

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Kind discriminates what an objective measures.
type Kind string

const (
	// Availability: a sample is good unless the service failed it
	// (panic, invalid solution, internal error, breaker rejection).
	Availability Kind = "availability"
	// Latency: a sample is good when it finished inside the threshold
	// (fixed ThresholdMS, or the request's own budget plus
	// BudgetEpsilon when ThresholdMS is 0). Samples that failed outright
	// count bad too: a crash is not "fast".
	Latency Kind = "latency"
)

// BudgetEpsilon is the slack granted past a request's budget before a
// budget-relative latency objective counts the sample bad — the same
// 250ms the engine deadline contract and benchfmt.ContractEpsilonMS
// grant for bookkeeping between the deadline firing and the call
// returning.
const BudgetEpsilon = 250 * time.Millisecond

// Objective declares one SLO over a slice of traffic.
type Objective struct {
	// Name identifies the objective in metrics, logs and /debug/slo.
	Name string `json:"name"`
	// Kind is Availability or Latency.
	Kind Kind `json:"kind"`
	// Target is the good fraction the objective promises (0 < Target < 1),
	// e.g. 0.99.
	Target float64 `json:"target"`
	// Window is the error-budget accounting window, e.g. 1h.
	Window time.Duration `json:"window"`
	// ThresholdMS is the latency threshold for Latency objectives; 0
	// means budget-relative (duration <= sample budget + BudgetEpsilon).
	ThresholdMS float64 `json:"threshold_ms,omitempty"`
	// Engine and Endpoint filter the samples the objective sees; empty
	// matches any.
	Engine   string `json:"engine,omitempty"`
	Endpoint string `json:"endpoint,omitempty"`
}

// matches reports whether the objective's slice includes s.
func (o *Objective) matches(s Sample) bool {
	if o.Engine != "" && o.Engine != s.Engine {
		return false
	}
	if o.Endpoint != "" && o.Endpoint != s.Endpoint {
		return false
	}
	return true
}

// good classifies one matching sample.
func (o *Objective) good(s Sample) bool {
	switch o.Kind {
	case Latency:
		if s.Failed {
			return false
		}
		limit := time.Duration(o.ThresholdMS * float64(time.Millisecond))
		if o.ThresholdMS == 0 {
			if s.Budget <= 0 {
				return true // no budget to hold the sample to
			}
			limit = s.Budget + BudgetEpsilon
		}
		return s.Duration <= limit
	default:
		return !s.Failed
	}
}

// Validate rejects unusable objectives.
func (o *Objective) Validate() error {
	if o.Name == "" {
		return fmt.Errorf("slo: objective has no name")
	}
	if o.Kind != Availability && o.Kind != Latency {
		return fmt.Errorf("slo: objective %s has unknown kind %q", o.Name, o.Kind)
	}
	if !(o.Target > 0 && o.Target < 1) {
		return fmt.Errorf("slo: objective %s target %v, want 0 < target < 1", o.Name, o.Target)
	}
	if o.Window <= 0 {
		return fmt.Errorf("slo: objective %s has no window", o.Name)
	}
	if o.ThresholdMS < 0 {
		return fmt.Errorf("slo: objective %s has negative threshold", o.Name)
	}
	return nil
}

// Rule is one multi-window burn-rate alert: it fires when the burn
// rate exceeds Burn over BOTH the short and the long window.
type Rule struct {
	// Name labels the rule ("fast", "slow").
	Name string `json:"name"`
	// Short and Long are the paired windows.
	Short time.Duration `json:"short"`
	Long  time.Duration `json:"long"`
	// Burn is the firing threshold (multiples of the budgeted burn).
	Burn float64 `json:"burn"`
}

// DefaultRules returns the two-stage alerting policy the daemon ships
// with: a fast page (burn 14.4 over 5m and 1h — a 1h budget gone in
// ~4m) and a slow ticket (burn 1 over 6h and 3d — budget exhaustion
// pace sustained for days).
func DefaultRules() []Rule {
	return []Rule{
		{Name: "fast", Short: 5 * time.Minute, Long: time.Hour, Burn: 14.4},
		{Name: "slow", Short: 6 * time.Hour, Long: 72 * time.Hour, Burn: 1},
	}
}

// DefaultObjectives returns the daemon's stock SLO set: solve
// availability and budget-relative solve latency on /v1/solve, plus
// session event-batch availability.
func DefaultObjectives() []Objective {
	return []Objective{
		{Name: "solve-availability", Kind: Availability, Target: 0.99, Window: time.Hour, Endpoint: "/v1/solve"},
		{Name: "solve-latency", Kind: Latency, Target: 0.99, Window: time.Hour, Endpoint: "/v1/solve"},
		{Name: "session-availability", Kind: Availability, Target: 0.999, Window: time.Hour, Endpoint: "/v1/sessions/events"},
	}
}

// Sample is one served request as the SLO engine sees it.
type Sample struct {
	// Engine and Endpoint locate the traffic slice.
	Engine   string
	Endpoint string
	// Failed marks a service failure (panic, invalid solution, internal
	// error, breaker rejection). Client errors and load shedding are
	// the caller's policy call — the daemon excludes them.
	Failed bool
	// Duration is the request's service time.
	Duration time.Duration
	// Budget is the request's own time budget (for budget-relative
	// latency objectives; 0 = none).
	Budget time.Duration
}

// bucketWidth is the time-ring granularity. Burn windows are measured
// in whole buckets, so the shortest window (5m) spans 10 buckets.
const bucketWidth = 30 * time.Second

// bucket is one ring slot: good/total counts for the interval starting
// at start.
type bucket struct {
	start       int64 // unix seconds of the bucket start; -1 when empty
	good, total int64
}

// objState is one objective's tracking state.
type objState struct {
	obj    Objective
	ring   []bucket
	firing map[string]bool // rule name → currently firing
}

// AlertEvent reports one rule transition (fired or resolved) observed
// during Evaluate.
type AlertEvent struct {
	// Objective and Rule name the transition.
	Objective string
	Rule      string
	// Firing is the new state.
	Firing bool
	// ShortBurn and LongBurn are the burn rates that drove it.
	ShortBurn float64
	LongBurn  float64
}

// Tracker ingests samples for a set of objectives and evaluates their
// burn-rate rules. Safe for concurrent use.
type Tracker struct {
	mu      sync.Mutex
	objs    []*objState
	rules   []Rule
	maxWin  time.Duration
	now     func() time.Time
	onAlert func(AlertEvent)
}

// Config builds a Tracker.
type Config struct {
	// Objectives to track (required, each must Validate).
	Objectives []Objective
	// Rules are the burn-rate alert rules (default DefaultRules).
	Rules []Rule
	// Now overrides the clock (tests); nil uses time.Now.
	Now func() time.Time
	// OnAlert, when set, observes every rule transition found by
	// Evaluate (edge-triggered: once on fire, once on resolve).
	OnAlert func(AlertEvent)
}

// New builds a Tracker over cfg.
func New(cfg Config) (*Tracker, error) {
	if len(cfg.Objectives) == 0 {
		return nil, fmt.Errorf("slo: no objectives")
	}
	rules := cfg.Rules
	if len(rules) == 0 {
		rules = DefaultRules()
	}
	maxWin := time.Duration(0)
	for _, r := range rules {
		if r.Short <= 0 || r.Long <= 0 || r.Short > r.Long || r.Burn <= 0 {
			return nil, fmt.Errorf("slo: rule %q malformed (short %v, long %v, burn %v)", r.Name, r.Short, r.Long, r.Burn)
		}
		if r.Long > maxWin {
			maxWin = r.Long
		}
	}
	t := &Tracker{rules: rules, maxWin: maxWin, now: cfg.Now, onAlert: cfg.OnAlert}
	if t.now == nil {
		t.now = time.Now
	}
	seen := map[string]bool{}
	for _, obj := range cfg.Objectives {
		if err := obj.Validate(); err != nil {
			return nil, err
		}
		if seen[obj.Name] {
			return nil, fmt.Errorf("slo: duplicate objective %q", obj.Name)
		}
		seen[obj.Name] = true
		win := obj.Window
		if maxWin > win {
			win = maxWin
		}
		n := int(win/bucketWidth) + 1
		ring := make([]bucket, n)
		for i := range ring {
			ring[i].start = -1
		}
		t.objs = append(t.objs, &objState{obj: obj, ring: ring, firing: map[string]bool{}})
	}
	return t, nil
}

// Record ingests one sample into every matching objective.
func (t *Tracker) Record(s Sample) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now().Unix()
	start := now - now%int64(bucketWidth/time.Second)
	for _, st := range t.objs {
		if !st.obj.matches(s) {
			continue
		}
		b := &st.ring[int((start/int64(bucketWidth/time.Second))%int64(len(st.ring)))]
		if b.start != start {
			b.start, b.good, b.total = start, 0, 0
		}
		b.total++
		if st.obj.good(s) {
			b.good++
		}
	}
}

// windowCounts sums good/total over the trailing window ending at now:
// every bucket whose interval overlaps (now-window, now]. Stale buckets
// left from a previous ring pass fail the overlap test and drop out
// without explicit invalidation.
func (st *objState) windowCounts(now time.Time, window time.Duration) (good, total int64) {
	lo := now.Add(-window).Unix()
	for i := range st.ring {
		b := &st.ring[i]
		if b.start >= 0 && b.start+int64(bucketWidth/time.Second) > lo {
			good += b.good
			total += b.total
		}
	}
	return good, total
}

// BurnRate is one window's burn reading.
type BurnRate struct {
	// Window labels the window ("5m", "1h", "6h", "3d").
	Window string `json:"window"`
	// Burn is badFraction / (1 - target); 0 when the window is empty.
	Burn float64 `json:"burn"`
	// Total counts the samples the window held.
	Total int64 `json:"total"`
}

// Alert is one rule's evaluated state.
type Alert struct {
	Rule string `json:"rule"`
	// Short/Long label the windows; ShortBurn/LongBurn their burns.
	Short     string  `json:"short"`
	Long      string  `json:"long"`
	ShortBurn float64 `json:"short_burn"`
	LongBurn  float64 `json:"long_burn"`
	// Threshold is the rule's firing burn.
	Threshold float64 `json:"threshold"`
	// Firing reports both windows over threshold (with traffic).
	Firing bool `json:"firing"`
}

// Status is one objective's evaluation.
type Status struct {
	Objective Objective `json:"objective"`
	// Good and Total count the samples in the objective window.
	Good  int64 `json:"good"`
	Total int64 `json:"total"`
	// Compliance is good/total over the objective window (1 when empty).
	Compliance float64 `json:"compliance"`
	// ErrorBudgetRemaining is the unspent fraction of the objective
	// window's error budget: 1 untouched, 0 exactly spent, negative
	// overspent.
	ErrorBudgetRemaining float64 `json:"error_budget_remaining"`
	// BurnRates covers every distinct rule window.
	BurnRates []BurnRate `json:"burn_rates"`
	// Alerts covers every rule.
	Alerts []Alert `json:"alerts"`
}

// Evaluate computes every objective's status at the tracker's current
// clock, invoking the OnAlert hook for each rule transition.
func (t *Tracker) Evaluate() []Status {
	t.mu.Lock()
	now := t.now()
	out := make([]Status, 0, len(t.objs))
	var events []AlertEvent
	for _, st := range t.objs {
		budget := 1 - st.obj.Target
		status := Status{Objective: st.obj, Compliance: 1, ErrorBudgetRemaining: 1}
		status.Good, status.Total = st.windowCounts(now, st.obj.Window)
		if status.Total > 0 {
			status.Compliance = float64(status.Good) / float64(status.Total)
			status.ErrorBudgetRemaining = 1 - (1-status.Compliance)/budget
		}

		burnOf := func(w time.Duration) (float64, int64) {
			good, total := st.windowCounts(now, w)
			if total == 0 {
				return 0, 0
			}
			bad := float64(total-good) / float64(total)
			return bad / budget, total
		}
		seenWin := map[string]bool{}
		for _, r := range t.rules {
			for _, w := range []time.Duration{r.Short, r.Long} {
				label := windowLabel(w)
				if seenWin[label] {
					continue
				}
				seenWin[label] = true
				burn, total := burnOf(w)
				status.BurnRates = append(status.BurnRates, BurnRate{Window: label, Burn: burn, Total: total})
			}
			shortBurn, shortTotal := burnOf(r.Short)
			longBurn, longTotal := burnOf(r.Long)
			firing := shortTotal > 0 && longTotal > 0 && shortBurn >= r.Burn && longBurn >= r.Burn
			status.Alerts = append(status.Alerts, Alert{
				Rule:      r.Name,
				Short:     windowLabel(r.Short),
				Long:      windowLabel(r.Long),
				ShortBurn: shortBurn,
				LongBurn:  longBurn,
				Threshold: r.Burn,
				Firing:    firing,
			})
			if st.firing[r.Name] != firing {
				st.firing[r.Name] = firing
				events = append(events, AlertEvent{
					Objective: st.obj.Name,
					Rule:      r.Name,
					Firing:    firing,
					ShortBurn: shortBurn,
					LongBurn:  longBurn,
				})
			}
		}
		out = append(out, status)
	}
	t.mu.Unlock()
	// The hook runs outside the lock, so it may safely log, render
	// metrics or even call back into the tracker.
	if t.onAlert != nil {
		for _, ev := range events {
			t.onAlert(ev)
		}
	}
	return out
}

// Firing returns the currently-firing rules as sorted
// "objective/rule" strings — the SLO snapshot diagnostic bundles embed.
// State reflects the most recent Evaluate.
func (t *Tracker) Firing() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []string
	for _, st := range t.objs {
		for rule, firing := range st.firing {
			if firing {
				out = append(out, st.obj.Name+"/"+rule)
			}
		}
	}
	sort.Strings(out)
	return out
}

// windowLabel renders a duration compactly: 5m, 1h, 6h, 3d.
func windowLabel(d time.Duration) string {
	switch {
	case d >= 24*time.Hour && d%(24*time.Hour) == 0:
		return fmt.Sprintf("%dd", d/(24*time.Hour))
	case d >= time.Hour && d%time.Hour == 0:
		return fmt.Sprintf("%dh", d/time.Hour)
	case d >= time.Minute && d%time.Minute == 0:
		return fmt.Sprintf("%dm", d/time.Minute)
	default:
		return d.String()
	}
}
