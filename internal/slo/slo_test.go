package slo

import (
	"strings"
	"testing"
	"time"
)

// fakeClock is the synthetic clock the burn-rate tests drive.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newClock() *fakeClock                   { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func good(endpoint string) Sample            { return Sample{Endpoint: endpoint, Duration: 10 * time.Millisecond} }
func bad(endpoint string) Sample {
	return Sample{Endpoint: endpoint, Failed: true, Duration: 10 * time.Millisecond}
}
func mustTracker(t *testing.T, cfg Config) *Tracker {
	t.Helper()
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func statusOf(t *testing.T, statuses []Status, name string) Status {
	t.Helper()
	for _, s := range statuses {
		if s.Objective.Name == name {
			return s
		}
	}
	t.Fatalf("no status for objective %q", name)
	return Status{}
}

func alertOf(t *testing.T, s Status, rule string) Alert {
	t.Helper()
	for _, a := range s.Alerts {
		if a.Rule == rule {
			return a
		}
	}
	t.Fatalf("objective %q has no rule %q", s.Objective.Name, rule)
	return Alert{}
}

// TestFastBurnAlertCrossesWindows drives the canonical incident arc on a
// synthetic clock: an hour of clean traffic (no alert), a five-minute
// total outage (fast rule fires, edge-triggered once), recovery (fast
// rule resolves once the outage ages out of the short window).
func TestFastBurnAlertCrossesWindows(t *testing.T) {
	clock := newClock()
	var events []AlertEvent
	tr := mustTracker(t, Config{
		Objectives: []Objective{{Name: "avail", Kind: Availability, Target: 0.99, Window: time.Hour, Endpoint: "/v1/solve"}},
		Now:        clock.now,
		OnAlert:    func(ev AlertEvent) { events = append(events, ev) },
	})

	// 55 minutes of healthy traffic: two good solves per bucket.
	for i := 0; i < 110; i++ {
		tr.Record(good("/v1/solve"))
		tr.Record(good("/v1/solve"))
		clock.advance(30 * time.Second)
	}
	st := statusOf(t, tr.Evaluate(), "avail")
	if st.Compliance != 1 || st.ErrorBudgetRemaining != 1 {
		t.Fatalf("clean traffic: compliance %v, budget %v, want 1/1", st.Compliance, st.ErrorBudgetRemaining)
	}
	for _, a := range st.Alerts {
		if a.Firing {
			t.Fatalf("alert %q firing on clean traffic", a.Rule)
		}
	}
	if len(events) != 0 {
		t.Fatalf("clean traffic produced alert events: %+v", events)
	}

	// Five-minute total outage at 10x rate.
	for i := 0; i < 10; i++ {
		for j := 0; j < 20; j++ {
			tr.Record(bad("/v1/solve"))
		}
		clock.advance(30 * time.Second)
	}
	st = statusOf(t, tr.Evaluate(), "avail")
	fast := alertOf(t, st, "fast")
	if !fast.Firing {
		t.Fatalf("fast rule not firing after outage: %+v", fast)
	}
	// Short window holds only failures: burn = 1.0/0.01 = 100.
	if fast.ShortBurn < 90 {
		t.Fatalf("short burn %v, want ~100 (all-failure window)", fast.ShortBurn)
	}
	if fast.LongBurn < 14.4 {
		t.Fatalf("long burn %v, want >= 14.4", fast.LongBurn)
	}
	if slow := alertOf(t, st, "slow"); !slow.Firing {
		// The 6h window also holds the outage; burn there exceeds 1 too.
		t.Fatalf("slow rule should also fire during a total outage: %+v", slow)
	}
	if st.ErrorBudgetRemaining >= 0 {
		t.Fatalf("budget remaining %v after blowing the window, want negative", st.ErrorBudgetRemaining)
	}
	var fastFired int
	for _, ev := range events {
		if ev.Rule == "fast" && ev.Firing {
			fastFired++
		}
	}
	if fastFired != 1 {
		t.Fatalf("fast rule fired %d events, want exactly 1 (edge-triggered)", fastFired)
	}
	// Re-evaluating without new samples must not re-fire.
	tr.Evaluate()
	n := len(events)
	tr.Evaluate()
	if len(events) != n {
		t.Fatalf("steady-state Evaluate produced new transitions")
	}

	// Recovery: six minutes of clean traffic pushes the outage out of the
	// 5m window; the fast rule resolves even though the 1h window still
	// remembers the incident.
	for i := 0; i < 12; i++ {
		for j := 0; j < 20; j++ {
			tr.Record(good("/v1/solve"))
		}
		clock.advance(30 * time.Second)
	}
	st = statusOf(t, tr.Evaluate(), "avail")
	fast = alertOf(t, st, "fast")
	if fast.Firing {
		t.Fatalf("fast rule still firing after recovery: %+v", fast)
	}
	if fast.LongBurn < 14.4 {
		t.Fatalf("long window should still remember the outage: %+v", fast)
	}
	var resolved bool
	for _, ev := range events[n:] {
		if ev.Rule == "fast" && !ev.Firing {
			resolved = true
		}
	}
	if !resolved {
		t.Fatal("no resolve event for the fast rule")
	}
}

// TestSlowBurnAlertNeedsSustainedBurn feeds a steady 3% bad fraction —
// burn 3 against a 99% target — for three days. The slow rule (burn 1
// over 6h/3d) fires; the fast rule (burn 14.4) must not.
func TestSlowBurnAlertNeedsSustainedBurn(t *testing.T) {
	clock := newClock()
	tr := mustTracker(t, Config{
		Objectives: []Objective{{Name: "avail", Kind: Availability, Target: 0.99, Window: time.Hour}},
		Now:        clock.now,
	})
	// One sample per bucket, every 33rd one bad (~3%).
	buckets := int(72*time.Hour/(30*time.Second)) + 10
	for i := 0; i < buckets; i++ {
		if i%33 == 0 {
			tr.Record(bad("/v1/solve"))
		} else {
			tr.Record(good("/v1/solve"))
		}
		clock.advance(30 * time.Second)
	}
	st := statusOf(t, tr.Evaluate(), "avail")
	slow := alertOf(t, st, "slow")
	if !slow.Firing {
		t.Fatalf("slow rule not firing on sustained burn ~3: %+v", slow)
	}
	if fast := alertOf(t, st, "fast"); fast.Firing {
		t.Fatalf("fast rule firing on a slow leak: %+v", fast)
	}
}

// TestErrorBudgetArithmetic pins the budget-remaining formula.
func TestErrorBudgetArithmetic(t *testing.T) {
	clock := newClock()
	tr := mustTracker(t, Config{
		Objectives: []Objective{{Name: "avail", Kind: Availability, Target: 0.99, Window: time.Hour}},
		Now:        clock.now,
	})
	// 1000 samples, 5 bad: compliance 0.995, half the 1% budget spent.
	for i := 0; i < 1000; i++ {
		if i < 5 {
			tr.Record(bad("/v1/solve"))
		} else {
			tr.Record(good("/v1/solve"))
		}
	}
	st := statusOf(t, tr.Evaluate(), "avail")
	if st.Good != 995 || st.Total != 1000 {
		t.Fatalf("counts %d/%d, want 995/1000", st.Good, st.Total)
	}
	if st.Compliance < 0.9949 || st.Compliance > 0.9951 {
		t.Fatalf("compliance %v, want 0.995", st.Compliance)
	}
	if st.ErrorBudgetRemaining < 0.499 || st.ErrorBudgetRemaining > 0.501 {
		t.Fatalf("budget remaining %v, want 0.5", st.ErrorBudgetRemaining)
	}
}

// TestLatencyObjectiveBudgetRelative checks the budget-relative goodness
// rule: within budget+epsilon good, past it bad, no budget always good,
// failed never good. A fixed-threshold objective runs alongside.
func TestLatencyObjectiveBudgetRelative(t *testing.T) {
	clock := newClock()
	tr := mustTracker(t, Config{
		Objectives: []Objective{
			{Name: "lat-budget", Kind: Latency, Target: 0.5, Window: time.Hour},
			{Name: "lat-fixed", Kind: Latency, Target: 0.5, Window: time.Hour, ThresholdMS: 100},
		},
		Now: clock.now,
	})
	budget := 2 * time.Second
	samples := []struct {
		s          Sample
		wantBudget bool // good under lat-budget?
		wantFixed  bool // good under lat-fixed?
	}{
		{Sample{Duration: budget, Budget: budget}, true, false},
		{Sample{Duration: budget + BudgetEpsilon, Budget: budget}, true, false},
		{Sample{Duration: budget + BudgetEpsilon + time.Millisecond, Budget: budget}, false, false},
		{Sample{Duration: 50 * time.Millisecond, Budget: budget}, true, true},
		{Sample{Duration: 10 * time.Second}, true, false}, // no budget: budget-relative can't judge it
		{Sample{Duration: time.Millisecond, Failed: true}, false, false},
		{Sample{Duration: 100 * time.Millisecond}, true, true},
		{Sample{Duration: 101 * time.Millisecond}, true, false},
	}
	var wantB, wantF int64
	for _, tc := range samples {
		tr.Record(tc.s)
		if tc.wantBudget {
			wantB++
		}
		if tc.wantFixed {
			wantF++
		}
	}
	statuses := tr.Evaluate()
	if st := statusOf(t, statuses, "lat-budget"); st.Good != wantB || st.Total != int64(len(samples)) {
		t.Fatalf("lat-budget counts %d/%d, want %d/%d", st.Good, st.Total, wantB, len(samples))
	}
	if st := statusOf(t, statuses, "lat-fixed"); st.Good != wantF || st.Total != int64(len(samples)) {
		t.Fatalf("lat-fixed counts %d/%d, want %d/%d", st.Good, st.Total, wantF, len(samples))
	}
}

// TestObjectiveSliceFilters checks engine/endpoint matching.
func TestObjectiveSliceFilters(t *testing.T) {
	clock := newClock()
	tr := mustTracker(t, Config{
		Objectives: []Objective{
			{Name: "solve-only", Kind: Availability, Target: 0.9, Window: time.Hour, Endpoint: "/v1/solve"},
			{Name: "exact-only", Kind: Availability, Target: 0.9, Window: time.Hour, Engine: "exact"},
		},
		Now: clock.now,
	})
	tr.Record(Sample{Endpoint: "/v1/solve", Engine: "heuristic"})
	tr.Record(Sample{Endpoint: "/v1/sessions/events", Engine: "exact", Failed: true})
	statuses := tr.Evaluate()
	if st := statusOf(t, statuses, "solve-only"); st.Total != 1 || st.Good != 1 {
		t.Fatalf("solve-only saw %d/%d, want 1/1", st.Good, st.Total)
	}
	if st := statusOf(t, statuses, "exact-only"); st.Total != 1 || st.Good != 0 {
		t.Fatalf("exact-only saw %d/%d, want 0/1", st.Good, st.Total)
	}
}

// TestStaleBucketsAgeOut advances the clock far past every window and
// checks old failures stop counting without any explicit expiry pass.
func TestStaleBucketsAgeOut(t *testing.T) {
	clock := newClock()
	tr := mustTracker(t, Config{
		Objectives: []Objective{{Name: "avail", Kind: Availability, Target: 0.99, Window: time.Hour}},
		Now:        clock.now,
	})
	for i := 0; i < 50; i++ {
		tr.Record(bad("/v1/solve"))
	}
	clock.advance(4 * 24 * time.Hour)
	tr.Record(good("/v1/solve"))
	st := statusOf(t, tr.Evaluate(), "avail")
	if st.Total != 1 || st.Good != 1 || st.Compliance != 1 {
		t.Fatalf("stale failures still counted: %+v", st)
	}
	for _, a := range st.Alerts {
		if a.Firing {
			t.Fatalf("alert %q firing on aged-out failures", a.Rule)
		}
	}
}

// TestEmptyTrackerEvaluates checks the no-traffic posture: full budget,
// compliance 1, nothing firing.
func TestEmptyTrackerEvaluates(t *testing.T) {
	tr := mustTracker(t, Config{Objectives: DefaultObjectives()})
	for _, st := range tr.Evaluate() {
		if st.Compliance != 1 || st.ErrorBudgetRemaining != 1 {
			t.Fatalf("empty %q: %+v", st.Objective.Name, st)
		}
		for _, a := range st.Alerts {
			if a.Firing {
				t.Fatalf("empty tracker fires %q/%q", st.Objective.Name, a.Rule)
			}
		}
	}
}

// TestConfigValidation rejects malformed objectives and rules.
func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"no objectives", Config{}, "no objectives"},
		{"bad target", Config{Objectives: []Objective{{Name: "x", Kind: Availability, Target: 1.2, Window: time.Hour}}}, "target"},
		{"no window", Config{Objectives: []Objective{{Name: "x", Kind: Availability, Target: 0.9}}}, "window"},
		{"bad kind", Config{Objectives: []Objective{{Name: "x", Kind: "velocity", Target: 0.9, Window: time.Hour}}}, "kind"},
		{"unnamed", Config{Objectives: []Objective{{Kind: Availability, Target: 0.9, Window: time.Hour}}}, "name"},
		{"duplicate", Config{Objectives: []Objective{
			{Name: "x", Kind: Availability, Target: 0.9, Window: time.Hour},
			{Name: "x", Kind: Availability, Target: 0.9, Window: time.Hour},
		}}, "duplicate"},
		{"bad rule", Config{
			Objectives: []Objective{{Name: "x", Kind: Availability, Target: 0.9, Window: time.Hour}},
			Rules:      []Rule{{Name: "r", Short: time.Hour, Long: time.Minute, Burn: 2}},
		}, "malformed"},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

// TestWindowLabel pins the compact rendering used in metrics labels.
func TestWindowLabel(t *testing.T) {
	for d, want := range map[time.Duration]string{
		5 * time.Minute:  "5m",
		time.Hour:        "1h",
		6 * time.Hour:    "6h",
		72 * time.Hour:   "3d",
		90 * time.Second: "1m30s",
	} {
		if got := windowLabel(d); got != want {
			t.Errorf("windowLabel(%v) = %q, want %q", d, got, want)
		}
	}
}
