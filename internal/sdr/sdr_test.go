package sdr

import (
	"testing"

	"repro/internal/core"
	"repro/internal/device"
)

func TestTableIMatchesPaper(t *testing.T) {
	regions := TableI()
	if len(regions) != 5 {
		t.Fatalf("regions = %d, want 5", len(regions))
	}
	totals := device.Requirements{}
	for _, r := range regions {
		for cl, n := range r.Req {
			totals[cl] += n
		}
	}
	if totals[device.ClassCLB] != 104 || totals[device.ClassBRAM] != 5 || totals[device.ClassDSP] != 11 {
		t.Fatalf("totals = %v, want 104/5/11 (Table I)", totals)
	}
}

func TestProblemShape(t *testing.T) {
	p := Problem()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Nets) != 4 {
		t.Fatalf("nets = %d, want 4 (sequential bus)", len(p.Nets))
	}
	for i, n := range p.Nets {
		if n.A != i || n.B != i+1 || n.Weight != BusWidth {
			t.Fatalf("net %d = %+v", i, n)
		}
	}
	frames, err := p.RequiredFrames()
	if err != nil {
		t.Fatal(err)
	}
	if frames != 4202 {
		t.Fatalf("total frames = %d, want 4202", frames)
	}
}

func TestSDR2SDR3Shapes(t *testing.T) {
	p2 := SDR2()
	if len(p2.FCAreas) != 6 {
		t.Fatalf("SDR2 FC areas = %d, want 6", len(p2.FCAreas))
	}
	p3 := SDR3()
	if len(p3.FCAreas) != 9 {
		t.Fatalf("SDR3 FC areas = %d, want 9", len(p3.FCAreas))
	}
	for _, fc := range p3.FCAreas {
		if fc.Mode != core.RelocConstraint {
			t.Fatal("SDR3 areas must be constraint mode")
		}
	}
	reloc := RelocatableRegions(p3)
	if len(reloc) != 3 {
		t.Fatalf("relocatable regions = %v", reloc)
	}
	for _, ri := range reloc {
		name := p3.Regions[ri].Name
		if name == MatchedFilter || name == VideoDecoder {
			t.Fatalf("region %s must not be relocatable", name)
		}
	}
}

func TestWithMetricFC(t *testing.T) {
	p := WithMetricFC(2, 1.5)
	if len(p.FCAreas) != 6 {
		t.Fatalf("FC areas = %d, want 6", len(p.FCAreas))
	}
	for _, fc := range p.FCAreas {
		if fc.Mode != core.RelocMetric || fc.Weight != 1.5 {
			t.Fatalf("request = %+v", fc)
		}
	}
}

func TestSynthetic(t *testing.T) {
	p, err := Synthetic(GeneratorConfig{Regions: 4, MaxCLB: 10, MaxBRAM: 2, MaxDSP: 1, ChainNets: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Nets) != 3 {
		t.Fatalf("nets = %d, want 3", len(p.Nets))
	}
	// Determinism.
	q, err := Synthetic(GeneratorConfig{Regions: 4, MaxCLB: 10, MaxBRAM: 2, MaxDSP: 1, ChainNets: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Regions {
		for cl, n := range p.Regions[i].Req {
			if q.Regions[i].Req[cl] != n {
				t.Fatal("generator not deterministic")
			}
		}
	}
	if _, err := Synthetic(GeneratorConfig{Regions: 0}); err == nil {
		t.Fatal("zero regions accepted")
	}
}
