// Package sdr builds the software-defined-radio case study of Section VI:
// five reconfigurable regions on a Virtex-5 FX70T, chained by a 64-bit
// bus, with the resource requirements of Table I — plus the derived SDR2
// and SDR3 instances that request free-compatible areas for the
// relocatable regions, and a synthetic design generator for scaling
// studies.
package sdr

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/device"
)

// Region names of the SDR design, in bus order.
const (
	MatchedFilter   = "Matched Filter"
	CarrierRecovery = "Carrier Recovery"
	Demodulator     = "Demodulator"
	SignalDecoder   = "Signal Decoder"
	VideoDecoder    = "Video Decoder"
)

// BusWidth is the width of the bus chaining the SDR modules.
const BusWidth = 64

// TableI returns the resource requirements of the five SDR regions
// exactly as published (CLB/BRAM/DSP tiles per region).
func TableI() []core.Region {
	return []core.Region{
		{Name: MatchedFilter, Req: device.Requirements{device.ClassCLB: 25, device.ClassDSP: 5}},
		{Name: CarrierRecovery, Req: device.Requirements{device.ClassCLB: 7, device.ClassDSP: 1}},
		{Name: Demodulator, Req: device.Requirements{device.ClassCLB: 5, device.ClassBRAM: 2}},
		{Name: SignalDecoder, Req: device.Requirements{device.ClassCLB: 12, device.ClassBRAM: 1}},
		{Name: VideoDecoder, Req: device.Requirements{device.ClassCLB: 55, device.ClassBRAM: 2, device.ClassDSP: 5}},
	}
}

// Problem returns the plain SDR floorplanning instance (no relocation
// requirements): Table I regions on the FX70T, bus nets in module order,
// and the paper's evaluation objective.
func Problem() *core.Problem {
	regions := TableI()
	nets := make([]core.Net, 0, len(regions)-1)
	for i := 0; i+1 < len(regions); i++ {
		nets = append(nets, core.Net{A: i, B: i + 1, Weight: BusWidth})
	}
	return &core.Problem{
		Device:    device.VirtexFX70T(),
		Regions:   regions,
		Nets:      nets,
		Objective: core.DefaultObjective(),
	}
}

// RelocatableRegions returns the indices of the regions for which the
// paper's feasibility analysis finds free-compatible areas: Carrier
// Recovery, Demodulator and Signal Decoder.
func RelocatableRegions(p *core.Problem) []int {
	return []int{
		p.RegionIndex(CarrierRecovery),
		p.RegionIndex(Demodulator),
		p.RegionIndex(SignalDecoder),
	}
}

// SDR2 returns the instance requesting 2 constraint-mode free-compatible
// areas for each relocatable region.
func SDR2() *core.Problem {
	p := Problem()
	return p.WithFCConstraints(RelocatableRegions(p), 2)
}

// SDR3 returns the instance requesting 3 constraint-mode free-compatible
// areas for each relocatable region.
func SDR3() *core.Problem {
	p := Problem()
	return p.WithFCConstraints(RelocatableRegions(p), 3)
}

// WithMetricFC returns the SDR instance requesting count metric-mode
// free-compatible areas (weight per area) for every relocatable region —
// the Section V "relocation as a metrics" variant.
func WithMetricFC(count int, weight float64) *core.Problem {
	p := Problem()
	for _, ri := range RelocatableRegions(p) {
		for k := 0; k < count; k++ {
			p.FCAreas = append(p.FCAreas, core.FCRequest{
				Region: ri, Mode: core.RelocMetric, Weight: weight,
			})
		}
	}
	return p
}

// GeneratorConfig parameterizes Synthetic.
type GeneratorConfig struct {
	// Regions is the number of reconfigurable regions.
	Regions int
	// Device is the target; nil selects the FX70T.
	Device *device.Device
	// MaxCLB, MaxBRAM, MaxDSP bound each region's requirements.
	MaxCLB, MaxBRAM, MaxDSP int
	// ChainNets adds a bus net between consecutive regions.
	ChainNets bool
	// Seed drives the deterministic generator.
	Seed int64
}

// Synthetic generates a random design in the style of the SDR case study:
// heterogeneous per-region requirements on a columnar device. Requirements
// are clamped so a single region always fits the device.
func Synthetic(cfg GeneratorConfig) (*core.Problem, error) {
	if cfg.Regions <= 0 {
		return nil, fmt.Errorf("sdr: need at least one region, got %d", cfg.Regions)
	}
	d := cfg.Device
	if d == nil {
		d = device.VirtexFX70T()
	}
	if cfg.MaxCLB <= 0 {
		cfg.MaxCLB = 20
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	total := d.CountClasses(d.Bounds())
	p := &core.Problem{Device: d, Objective: core.DefaultObjective()}
	for i := 0; i < cfg.Regions; i++ {
		req := device.Requirements{}
		req[device.ClassCLB] = 1 + rng.Intn(cfg.MaxCLB)
		if cfg.MaxBRAM > 0 && rng.Intn(2) == 0 {
			req[device.ClassBRAM] = 1 + rng.Intn(cfg.MaxBRAM)
		}
		if cfg.MaxDSP > 0 && rng.Intn(2) == 0 {
			req[device.ClassDSP] = 1 + rng.Intn(cfg.MaxDSP)
		}
		for class, n := range req {
			if limit := total[class] / 2; n > limit && limit > 0 {
				req[class] = limit
			}
		}
		p.Regions = append(p.Regions, core.Region{
			Name: fmt.Sprintf("R%d", i),
			Req:  req,
		})
		if cfg.ChainNets && i > 0 {
			p.Nets = append(p.Nets, core.Net{A: i - 1, B: i, Weight: 32})
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
