package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNopZeroAlloc pins the tentpole guarantee behind the "zero-cost
// when unused" claim: driving the no-op probe allocates nothing.
func TestNopZeroAlloc(t *testing.T) {
	sp := Nop.Span("exact")
	allocs := testing.AllocsPerRun(1000, func() {
		s := Nop.Span("exact")
		s.Add(Nodes, 1024)
		s.Incumbent(42)
		s.End(OutcomeSolved, time.Second)
		sp.Add(Pivots, 1)
	})
	if allocs != 0 {
		t.Errorf("no-op probe allocated %.1f times per run, want 0", allocs)
	}
}

func TestOrNop(t *testing.T) {
	if OrNop(nil) != NopSpan {
		t.Error("OrNop(nil) did not return NopSpan")
	}
	sp := NewRecorder().Span("x")
	if OrNop(sp) != sp {
		t.Error("OrNop(sp) did not pass the span through")
	}
}

func TestRecorderAggregation(t *testing.T) {
	r := NewRecorder()
	a := r.Span("exact")
	a.Add(Nodes, 10)
	a.Add(Nodes, 5)
	a.Incumbent(9)
	a.Incumbent(3)
	a.End(OutcomeProven, 20*time.Millisecond)

	b := r.Span("milp-o/waste")
	b.Add(Pivots, 100)
	b.End(OutcomeNoSolution, -time.Millisecond)

	// Same-name spans merge counters.
	a2 := r.Span("exact")
	a2.Add(Nodes, 1)

	if got := r.TotalFor("exact", Nodes); got != 16 {
		t.Errorf("exact nodes = %d, want 16", got)
	}
	if got := r.Total(Pivots); got != 100 {
		t.Errorf("total pivots = %d, want 100", got)
	}
	inc := r.Incumbents("exact")
	if len(inc) != 2 || inc[0].Objective != 9 || inc[1].Objective != 3 {
		t.Errorf("exact incumbents = %+v, want objectives [9 3]", inc)
	}
	if inc[1].At < inc[0].At {
		t.Errorf("incumbent timestamps not monotone: %v then %v", inc[0].At, inc[1].At)
	}
	end, ok := r.EndOf("exact")
	if !ok || end.Outcome != OutcomeProven || end.Slack != 20*time.Millisecond {
		t.Errorf("EndOf(exact) = %+v, %v", end, ok)
	}
	if _, ok := r.EndOf("unknown"); ok {
		t.Error("EndOf(unknown) reported a record")
	}
	names := r.SpanNames()
	if len(names) != 2 || names[0] != "exact" || names[1] != "milp-o/waste" {
		t.Errorf("SpanNames = %v", names)
	}
}

func TestRecorderIncumbentCap(t *testing.T) {
	r := NewRecorder()
	sp := r.Span("annealing/energy")
	for i := 0; i < maxIncumbentsDefault+7; i++ {
		sp.Incumbent(float64(-i))
	}
	if got := len(r.Incumbents("")); got != maxIncumbentsDefault {
		t.Errorf("stored %d incumbents, want cap %d", got, maxIncumbentsDefault)
	}
	if got := r.DroppedIncumbents(); got != 7 {
		t.Errorf("dropped = %d, want 7", got)
	}
	if tr := r.Trace(); tr.DroppedIncumbents != 7 {
		t.Errorf("trace dropped = %d, want 7", tr.DroppedIncumbents)
	}
}

// TestRecorderConcurrent drives one recorder from many goroutines (the
// parallel-exact / portfolio shape); run under -race this is the
// thread-safety contract test.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := r.Span("exact")
			for i := 0; i < 1000; i++ {
				sp.Add(Nodes, 1)
			}
			sp.Incumbent(1)
			sp.End(OutcomeSolved, 0)
		}()
	}
	wg.Wait()
	if got := r.Total(Nodes); got != 8000 {
		t.Errorf("nodes = %d, want 8000", got)
	}
	if got := len(r.Ends()); got != 8 {
		t.Errorf("ends = %d, want 8", got)
	}
}

func TestTraceShape(t *testing.T) {
	r := NewRecorder()
	sp := r.Span("exact")
	sp.Add(Nodes, 3)
	sp.Add(CacheHits, 2)
	sp.Incumbent(5)
	sp.End(OutcomeProven, 10*time.Millisecond)

	tr := r.Trace()
	if len(tr.Spans) != 1 || tr.Spans[0].Name != "exact" {
		t.Fatalf("spans = %+v", tr.Spans)
	}
	if tr.Spans[0].Outcome != string(OutcomeProven) {
		t.Errorf("outcome = %q", tr.Spans[0].Outcome)
	}
	if tr.Spans[0].Counters["nodes"] != 3 || tr.Counters["cache_hits"] != 2 {
		t.Errorf("counters = %+v / %+v", tr.Spans[0].Counters, tr.Counters)
	}
	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"incumbents"`, `"objective":5`, `"spans"`, `"nodes":3`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("trace JSON missing %s:\n%s", want, data)
		}
	}

	table := r.Table()
	for _, want := range []string{"exact", "proven", "incumbents:"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

func TestCounterNames(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Counters() {
		name := c.String()
		if name == "" || name == "unknown" {
			t.Errorf("counter %d has no name", c)
		}
		if seen[name] {
			t.Errorf("duplicate counter name %q", name)
		}
		seen[name] = true
	}
	if Counter(200).String() != "unknown" {
		t.Error("out-of-range counter did not stringify as unknown")
	}
}

func TestSlackUntil(t *testing.T) {
	if got := SlackUntil(time.Time{}); got != 0 {
		t.Errorf("SlackUntil(zero) = %v, want 0", got)
	}
	if got := SlackUntil(time.Now().Add(time.Hour)); got < 59*time.Minute {
		t.Errorf("SlackUntil(+1h) = %v", got)
	}
	if got := SlackUntil(time.Now().Add(-time.Hour)); got > -59*time.Minute {
		t.Errorf("SlackUntil(-1h) = %v", got)
	}
}
