// Package obs is the solve-telemetry layer: a lightweight observer API
// that turns every solve into an inspectable trajectory.
//
// Engines report work through a Probe handed in via core.SolveOptions:
// each engine (and each internal stage, such as a MILP pass) opens a
// Span, adds Counter deltas (branch-and-bound nodes, simplex pivots,
// annealing moves, ...), emits an Incumbent event whenever it finds a
// better solution, and Ends the span with a terminal Outcome and the
// deadline slack left at return. The default probe is Nop, whose methods
// are empty and allocation-free, so uninstrumented callers pay nothing
// (see BenchmarkObsOverhead).
//
// Recorder is the in-memory Probe used by the daemon, the -trace CLI
// flag and the tests: it aggregates counters per span, timestamps the
// incumbent trajectory, and renders the result as a wire-format Trace or
// a human-readable table.
//
// Conventions:
//
//   - Probes and Spans must be safe for concurrent use: parallel engines
//     (exact workers, portfolio members) emit into one probe at once.
//   - An engine's own span (named after the engine) carries incumbent
//     objectives on the problem-objective scale, so the sequence is
//     nonincreasing (quality is nondecreasing). Internal stages with a
//     different natural scale — MILP pass objectives, annealing energy —
//     use sub-spans named "<engine>/<stage>"; within any single span the
//     incumbent sequence is still nonincreasing.
//   - Every span that is opened is Ended exactly once, on every return
//     path including context cancellation and deadline expiry.
package obs

import (
	"strings"
	"time"
)

// Counter identifies an engine work counter. Counters are aggregated per
// span by recording probes; deltas may be batched by emitters.
type Counter uint8

// Work counters emitted by the engines and solver cores.
const (
	// Nodes counts search or branch-and-bound nodes expanded.
	Nodes Counter = iota
	// Pruned counts subtrees discarded by bounds before expansion.
	Pruned
	// Pivots counts simplex pivots (LP iterations).
	Pivots
	// Restarts counts annealing restarts (fresh-seed attempts).
	Restarts
	// Moves counts annealing moves proposed.
	Moves
	// Accepted counts annealing moves accepted.
	Accepted
	// Backtracks counts constructive placer backtrack steps.
	Backtracks
	// CacheHits counts candidate-cache hits.
	CacheHits
	// CacheMisses counts candidate-cache misses (full enumerations).
	CacheMisses

	numCounters
)

// counterNames are the stable identifiers used in traces, logs and
// Prometheus labels.
var counterNames = [numCounters]string{
	Nodes:       "nodes",
	Pruned:      "pruned",
	Pivots:      "pivots",
	Restarts:    "restarts",
	Moves:       "moves",
	Accepted:    "accepted",
	Backtracks:  "backtracks",
	CacheHits:   "cache_hits",
	CacheMisses: "cache_misses",
}

func (c Counter) String() string {
	if int(c) < len(counterNames) {
		return counterNames[c]
	}
	return "unknown"
}

// Counters enumerates every counter, for renderers that iterate them.
func Counters() []Counter {
	out := make([]Counter, numCounters)
	for i := range out {
		out[i] = Counter(i)
	}
	return out
}

// Outcome labels a span's terminal state.
type Outcome string

// Span outcomes.
const (
	// OutcomeProven: a solution proven optimal was returned.
	OutcomeProven Outcome = "proven"
	// OutcomeSolved: a feasible (not proven optimal) solution was returned.
	OutcomeSolved Outcome = "solved"
	// OutcomeInfeasible: the problem was proven infeasible.
	OutcomeInfeasible Outcome = "infeasible"
	// OutcomeNoSolution: the budget expired without a solution.
	OutcomeNoSolution Outcome = "no_solution"
	// OutcomePanic: the engine panicked and the guard layer recovered it.
	OutcomePanic Outcome = "panic"
	// OutcomeInvalid: the engine returned a solution that failed
	// validation against the problem (caught by the guard layer).
	OutcomeInvalid Outcome = "invalid"
	// OutcomeError: the solve failed for another reason.
	OutcomeError Outcome = "error"
)

// Probe observes solves. Implementations must be safe for concurrent
// use; Span may be called multiple times with the same name (the
// recorder merges them).
type Probe interface {
	// Span opens a named observation scope ("exact", "milp-o/wire", ...).
	Span(name string) Span
}

// Span is one engine's (or stage's) observation scope.
type Span interface {
	// Add accumulates delta into the span's counter c. Emitters may batch
	// deltas; only the sum is meaningful.
	Add(c Counter, delta int64)
	// Incumbent reports that a better solution was found, with its
	// objective value on the span's scale. Within a span the reported
	// values must be nonincreasing.
	Incumbent(objective float64)
	// End closes the span with its terminal outcome and the deadline
	// slack remaining at return (zero when the solve had no deadline;
	// negative on overrun). End is called exactly once per span.
	End(outcome Outcome, slack time.Duration)
}

type nopProbe struct{}

func (nopProbe) Span(string) Span { return NopSpan }

type nopSpan struct{}

func (nopSpan) Add(Counter, int64)         {}
func (nopSpan) Incumbent(float64)          {}
func (nopSpan) End(Outcome, time.Duration) {}

// Nop is the zero-overhead default probe: every method is an empty,
// allocation-free no-op.
var Nop Probe = nopProbe{}

// NopSpan is the span produced by Nop, usable directly where a Span
// (not a Probe) is the plumbing unit, e.g. milp/lp options.
var NopSpan Span = nopSpan{}

// OrNop returns sp, or NopSpan when sp is nil, so plumbed-through spans
// never need nil checks at emission sites.
func OrNop(sp Span) Span {
	if sp == nil {
		return NopSpan
	}
	return sp
}

// SplitSpan decomposes a span name into its engine and phase parts
// following the span-naming convention: an engine's own span is named
// after the engine ("exact"), internal stages are "<engine>/<stage>"
// ("milp-o/wire"). A bare engine span reports phase "solve"; only the
// first slash splits, so "a/b/c" yields stage "b/c".
func SplitSpan(name string) (engine, phase string) {
	if i := strings.IndexByte(name, '/'); i >= 0 {
		return name[:i], name[i+1:]
	}
	return name, "solve"
}

// SlackUntil returns the time remaining until deadline — the "deadline
// slack at return" emitted on span End. A zero deadline (no budget)
// returns zero.
func SlackUntil(deadline time.Time) time.Duration {
	if deadline.IsZero() {
		return 0
	}
	return time.Until(deadline)
}
