package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// maxIncumbentsDefault bounds the stored incumbent trajectory so a noisy
// emitter (early annealing energy descent) cannot grow a trace without
// bound. Counter aggregates stay exact regardless; only trajectory
// points beyond the cap are dropped (and counted).
const maxIncumbentsDefault = 1024

// IncumbentPoint is one step of the incumbent trajectory: a better
// solution of the given objective found At after recording started.
type IncumbentPoint struct {
	Span      string
	Objective float64
	At        time.Duration
}

// SpanEnd is a span's terminal record.
type SpanEnd struct {
	Span    string
	Outcome Outcome
	Slack   time.Duration
	At      time.Duration
}

// Recorder is a Probe that aggregates counters per span and timestamps
// incumbent/end events. Safe for concurrent use; one Recorder observes
// one solve (timestamps are relative to NewRecorder).
type Recorder struct {
	start time.Time
	cap   int

	mu         sync.Mutex
	counters   map[string]*[numCounters]int64
	spanOrder  []string
	incumbents []IncumbentPoint
	ends       []SpanEnd
	dropped    int
}

// NewRecorder returns an empty recorder; its clock starts now.
func NewRecorder() *Recorder {
	return &Recorder{
		start:    time.Now(),
		cap:      maxIncumbentsDefault,
		counters: make(map[string]*[numCounters]int64),
	}
}

// Span implements Probe. Spans with the same name share one counter set.
func (r *Recorder) Span(name string) Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	return span{r: r, name: name, counters: r.countersLocked(name)}
}

// countersLocked returns (creating if needed) the named span's counters.
func (r *Recorder) countersLocked(name string) *[numCounters]int64 {
	c, ok := r.counters[name]
	if !ok {
		c = new([numCounters]int64)
		r.counters[name] = c
		r.spanOrder = append(r.spanOrder, name)
	}
	return c
}

type span struct {
	r        *Recorder
	name     string
	counters *[numCounters]int64
}

func (s span) Add(c Counter, delta int64) {
	if c >= numCounters {
		return
	}
	s.r.mu.Lock()
	s.counters[c] += delta
	s.r.mu.Unlock()
}

func (s span) Incumbent(objective float64) {
	s.r.mu.Lock()
	defer s.r.mu.Unlock()
	if len(s.r.incumbents) >= s.r.cap {
		s.r.dropped++
		return
	}
	s.r.incumbents = append(s.r.incumbents, IncumbentPoint{
		Span:      s.name,
		Objective: objective,
		At:        time.Since(s.r.start),
	})
}

func (s span) End(outcome Outcome, slack time.Duration) {
	s.r.mu.Lock()
	defer s.r.mu.Unlock()
	s.r.ends = append(s.r.ends, SpanEnd{
		Span:    s.name,
		Outcome: outcome,
		Slack:   slack,
		At:      time.Since(s.r.start),
	})
}

// Incumbents returns the recorded trajectory of the named span, or of
// every span when name is empty, in emission order.
func (r *Recorder) Incumbents(name string) []IncumbentPoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]IncumbentPoint, 0, len(r.incumbents))
	for _, p := range r.incumbents {
		if name == "" || p.Span == name {
			out = append(out, p)
		}
	}
	return out
}

// IncumbentTimes returns when the named span's first and best incumbents
// were recorded, relative to recording start. Within a span incumbent
// objectives are nonincreasing, so the span's latest point is its best.
// ok is false when the span recorded no incumbents.
func (r *Recorder) IncumbentTimes(span string) (first, best time.Duration, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, p := range r.incumbents {
		if p.Span != span {
			continue
		}
		if !ok {
			first = p.At
			ok = true
		}
		best = p.At
	}
	return first, best, ok
}

// DroppedIncumbents reports trajectory points discarded over the cap.
func (r *Recorder) DroppedIncumbents() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Ends returns every span's terminal record in emission order.
func (r *Recorder) Ends() []SpanEnd {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]SpanEnd(nil), r.ends...)
}

// EndOf returns the first terminal record of the named span.
func (r *Recorder) EndOf(name string) (SpanEnd, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.ends {
		if e.Span == name {
			return e, true
		}
	}
	return SpanEnd{}, false
}

// Total returns counter c summed over every span.
func (r *Recorder) Total(c Counter) int64 {
	if c >= numCounters {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var total int64
	for _, sc := range r.counters {
		total += sc[c]
	}
	return total
}

// TotalFor returns counter c for the named span.
func (r *Recorder) TotalFor(name string, c Counter) int64 {
	if c >= numCounters {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if sc, ok := r.counters[name]; ok {
		return sc[c]
	}
	return 0
}

// SpanNames returns the observed span names in first-seen order.
func (r *Recorder) SpanNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.spanOrder...)
}

// Trace is the wire-format snapshot of a recorded solve, embedded in the
// daemon's solve response when the request asks for "trace": true.
type Trace struct {
	// Incumbents is the trajectory: objective + timestamp per
	// improvement, across all spans in emission order.
	Incumbents []TraceIncumbent `json:"incumbents,omitempty"`
	// DroppedIncumbents counts trajectory points discarded over the
	// recorder's cap.
	DroppedIncumbents int `json:"dropped_incumbents,omitempty"`
	// Counters are the nonzero counter totals summed over all spans.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Spans summarizes each observed span.
	Spans []TraceSpan `json:"spans,omitempty"`
}

// TraceIncumbent is one trajectory point on the wire.
type TraceIncumbent struct {
	Span      string  `json:"span"`
	Objective float64 `json:"objective"`
	AtMS      float64 `json:"at_ms"`
}

// TraceSpan is one span summary on the wire.
type TraceSpan struct {
	Name string `json:"name"`
	// Outcome is empty for spans that never ended (abandoned portfolio
	// stragglers).
	Outcome string `json:"outcome,omitempty"`
	// SlackMS is the deadline slack at return (0 without a deadline).
	SlackMS float64 `json:"slack_ms,omitempty"`
	// EndMS is when the span ended, relative to recording start.
	EndMS float64 `json:"end_ms,omitempty"`
	// Counters are the span's nonzero counter totals.
	Counters map[string]int64 `json:"counters,omitempty"`
}

// Trace snapshots the recorder into its wire form.
func (r *Recorder) Trace() *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := &Trace{DroppedIncumbents: r.dropped}
	for _, p := range r.incumbents {
		t.Incumbents = append(t.Incumbents, TraceIncumbent{
			Span:      p.Span,
			Objective: p.Objective,
			AtMS:      durMS(p.At),
		})
	}
	totals := map[string]int64{}
	for _, name := range r.spanOrder {
		sc := r.counters[name]
		ts := TraceSpan{Name: name}
		for c := Counter(0); c < numCounters; c++ {
			if sc[c] == 0 {
				continue
			}
			if ts.Counters == nil {
				ts.Counters = map[string]int64{}
			}
			ts.Counters[c.String()] = sc[c]
			totals[c.String()] += sc[c]
		}
		for _, e := range r.ends {
			if e.Span == name {
				ts.Outcome = string(e.Outcome)
				ts.SlackMS = durMS(e.Slack)
				ts.EndMS = durMS(e.At)
				break
			}
		}
		t.Spans = append(t.Spans, ts)
	}
	if len(totals) > 0 {
		t.Counters = totals
	}
	return t
}

// Table renders the recorded telemetry as a human-readable report: the
// per-span summary first, then the incumbent trajectory. Used by
// `floorplanner -trace` and `experiments -telemetry`.
func (r *Recorder) Table() string {
	tr := r.Trace()
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %-12s %10s %10s %10s %9s %9s\n",
		"span", "outcome", "nodes", "pivots", "backtracks", "slack", "end")
	for _, ts := range tr.Spans {
		outcome := ts.Outcome
		if outcome == "" {
			outcome = "-"
		}
		fmt.Fprintf(&b, "%-24s %-12s %10d %10d %10d %8.0fms %8.0fms\n",
			ts.Name, outcome,
			ts.Counters[Nodes.String()], ts.Counters[Pivots.String()],
			ts.Counters[Backtracks.String()], ts.SlackMS, ts.EndMS)
	}
	if len(tr.Counters) > 0 {
		names := make([]string, 0, len(tr.Counters))
		for n := range tr.Counters {
			names = append(names, n)
		}
		sort.Strings(names)
		b.WriteString("totals:")
		for _, n := range names {
			fmt.Fprintf(&b, " %s=%d", n, tr.Counters[n])
		}
		b.WriteString("\n")
	}
	if len(tr.Incumbents) > 0 {
		b.WriteString("incumbents:\n")
		for _, p := range tr.Incumbents {
			fmt.Fprintf(&b, "  %8.1fms  %-24s %g\n", p.AtMS, p.Span, p.Objective)
		}
		if tr.DroppedIncumbents > 0 {
			fmt.Fprintf(&b, "  (+%d dropped over the %d-point cap)\n", tr.DroppedIncumbents, maxIncumbentsDefault)
		}
	}
	return b.String()
}

func durMS(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}
