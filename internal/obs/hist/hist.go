// Package hist provides the fixed-bucket histograms shared by the
// serving layer's /metrics exposition and the /debug/solves summaries:
// cumulative bucket counts plus a true sum and count, so averages and
// Prometheus-style quantile estimates are both exact and cheap.
//
// A Hist is safe for concurrent use: Observe is a bucket scan plus three
// atomic adds (no locks, no allocation), so per-solve recording costs
// nanoseconds. Snapshot copies the state into an immutable value for
// rendering and quantile math.
package hist

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Hist is a fixed-bucket histogram. The zero value is not usable; build
// one with New.
type Hist struct {
	// bounds are the strictly-increasing finite bucket upper bounds; an
	// implicit +Inf bucket catches everything above the last bound.
	bounds []float64
	// counts[i] counts observations <= bounds[i]; counts[len(bounds)] is
	// the +Inf overflow bucket.
	counts []atomic.Int64
	// sumBits carries the float64 bits of the running sum (CAS-updated).
	sumBits atomic.Uint64
	count   atomic.Int64
}

// New builds a histogram over the given finite upper bounds. The bounds
// must be non-empty and strictly increasing; New panics otherwise
// (bucket layouts are compile-time decisions, not runtime input).
func New(bounds []float64) *Hist {
	if len(bounds) == 0 {
		panic("hist: no buckets")
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("hist: bound %d is not finite: %v", i, b))
		}
		if i > 0 && b <= bounds[i-1] {
			panic(fmt.Sprintf("hist: bounds not strictly increasing at %d: %v <= %v", i, b, bounds[i-1]))
		}
	}
	return &Hist{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value. NaN observations are dropped (they would
// poison the sum and fit no bucket).
func (h *Hist) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	idx := len(h.bounds)
	for i, ub := range h.bounds {
		if v <= ub {
			idx = i
			break
		}
	}
	h.counts[idx].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	h.count.Add(1)
}

// Snapshot is an immutable copy of a histogram's state. Counts are
// cumulative (Prometheus le-semantics): Counts[i] is the number of
// observations <= Bounds[i], and Count covers the +Inf bucket.
type Snapshot struct {
	// Bounds are the finite bucket upper bounds.
	Bounds []float64
	// Counts are cumulative observation counts per finite bound.
	Counts []int64
	// Sum is the exact sum of every observed value.
	Sum float64
	// Count is the total number of observations (the +Inf cumulative).
	Count int64
}

// Snapshot copies the histogram into its immutable cumulative form.
// Concurrent Observe calls may or may not be included; the snapshot is
// internally consistent enough for rendering (cumulative counts are
// computed from one pass over the per-bucket counters).
func (h *Hist) Snapshot() Snapshot {
	s := Snapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.bounds)),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	cum := int64(0)
	for i := range h.bounds {
		cum += h.counts[i].Load()
		s.Counts[i] = cum
	}
	s.Count = cum + h.counts[len(h.bounds)].Load()
	return s
}

// Mean returns the average observed value, or NaN when empty.
func (s Snapshot) Mean() float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation inside the bucket containing the target rank — the same
// estimate Prometheus's histogram_quantile computes. Values in the +Inf
// bucket clamp to the last finite bound. Returns NaN when empty.
func (s Snapshot) Quantile(q float64) float64 {
	if s.Count == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	for i, cum := range s.Counts {
		if float64(cum) < rank {
			continue
		}
		lo := 0.0
		prev := int64(0)
		if i > 0 {
			lo = s.Bounds[i-1]
			prev = s.Counts[i-1]
		}
		inBucket := cum - prev
		if inBucket == 0 {
			return s.Bounds[i]
		}
		return lo + (s.Bounds[i]-lo)*(rank-float64(prev))/float64(inBucket)
	}
	// Rank falls in the +Inf bucket: clamp to the largest finite bound.
	return s.Bounds[len(s.Bounds)-1]
}

// LatencyBuckets returns the solve-latency bounds in seconds, spanning
// the paper's workloads: sub-millisecond heuristic solves up to
// minute-scale exact/MILP proofs.
func LatencyBuckets() []float64 {
	return []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 120}
}

// WorkBuckets returns bounds for per-solve work counts (branch-and-bound
// nodes, simplex pivots): half-decade steps from 1 to ten million.
func WorkBuckets() []float64 {
	return []float64{1, 5, 10, 50, 100, 500, 1e3, 5e3, 1e4, 5e4, 1e5, 5e5, 1e6, 5e6, 1e7}
}
