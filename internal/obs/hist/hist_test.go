package hist

import (
	"math"
	"sync"
	"testing"
)

func TestObserveAndSnapshot(t *testing.T) {
	h := New([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 2, 50, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if got, want := s.Counts, []int64{2, 3, 4}; len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("cumulative counts = %v, want %v", got, want)
	}
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if want := 0.5 + 1 + 2 + 50 + 1000; s.Sum != want {
		t.Fatalf("sum = %g, want %g", s.Sum, want)
	}
	if want := (0.5 + 1 + 2 + 50 + 1000) / 5; s.Mean() != want {
		t.Fatalf("mean = %g, want %g", s.Mean(), want)
	}
}

func TestObserveDropsNaN(t *testing.T) {
	h := New([]float64{1})
	h.Observe(math.NaN())
	if s := h.Snapshot(); s.Count != 0 || s.Sum != 0 {
		t.Fatalf("NaN observation was recorded: %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	h := New([]float64{10, 20, 30})
	// 10 observations uniformly in (0,10], 10 in (10,20].
	for i := 0; i < 10; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	s := h.Snapshot()
	// Rank 10 of 20 falls exactly at the first bucket's upper bound.
	if got := s.Quantile(0.5); got != 10 {
		t.Errorf("p50 = %g, want 10", got)
	}
	// Rank 19 of 20 interpolates to 19 within the (10,20] bucket.
	if got := s.Quantile(0.95); math.Abs(got-19) > 1e-9 {
		t.Errorf("p95 = %g, want 19", got)
	}
	if got := s.Quantile(0); got != 0 {
		t.Errorf("p0 = %g, want 0", got)
	}
	if got := s.Quantile(1); got != 20 {
		t.Errorf("p100 = %g, want 20", got)
	}
}

func TestQuantileOverflowClampsToLastBound(t *testing.T) {
	h := New([]float64{1, 2})
	h.Observe(100) // +Inf bucket
	if got := h.Snapshot().Quantile(0.5); got != 2 {
		t.Fatalf("overflow quantile = %g, want clamp to 2", got)
	}
}

func TestQuantileEmpty(t *testing.T) {
	h := New([]float64{1})
	if got := h.Snapshot().Quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("empty quantile = %g, want NaN", got)
	}
	if got := h.Snapshot().Mean(); !math.IsNaN(got) {
		t.Fatalf("empty mean = %g, want NaN", got)
	}
}

func TestConcurrentObserve(t *testing.T) {
	h := New(WorkBuckets())
	const writers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != writers*per {
		t.Fatalf("count = %d, want %d", s.Count, writers*per)
	}
	n := float64(writers * per)
	if want := n * (n - 1) / 2; s.Sum != want {
		t.Fatalf("sum = %g, want %g", s.Sum, want)
	}
}

func TestNewPanicsOnBadBounds(t *testing.T) {
	for name, bounds := range map[string][]float64{
		"empty":         {},
		"nonincreasing": {1, 1},
		"descending":    {2, 1},
		"inf":           {1, math.Inf(1)},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%v) did not panic", bounds)
				}
			}()
			New(bounds)
		})
	}
}

func TestPresetBucketsAreValid(t *testing.T) {
	// New panics on invalid layouts, so constructing is the assertion.
	New(LatencyBuckets())
	New(WorkBuckets())
}
