package diag

import (
	"bytes"
	"compress/gzip"
	"testing"
	"time"
)

// protoEncoder is the test-side mirror of the decoder: just enough
// protobuf to hand-build synthetic profiles.
type protoEncoder struct{ buf bytes.Buffer }

func (e *protoEncoder) varint(v uint64) {
	for v >= 0x80 {
		e.buf.WriteByte(byte(v) | 0x80)
		v >>= 7
	}
	e.buf.WriteByte(byte(v))
}

func (e *protoEncoder) tag(field, wire int) { e.varint(uint64(field)<<3 | uint64(wire)) }

func (e *protoEncoder) varintField(field int, v uint64) {
	e.tag(field, wireVarint)
	e.varint(v)
}

func (e *protoEncoder) bytesField(field int, data []byte) {
	e.tag(field, wireBytes)
	e.varint(uint64(len(data)))
	e.buf.Write(data)
}

func (e *protoEncoder) stringField(field int, s string) { e.bytesField(field, []byte(s)) }

func encodeValueType(typ, unit uint64) []byte {
	var e protoEncoder
	e.varintField(1, typ)
	e.varintField(2, unit)
	return e.buf.Bytes()
}

func encodeLabel(key, str uint64) []byte {
	var e protoEncoder
	e.varintField(1, key)
	e.varintField(2, str)
	return e.buf.Bytes()
}

// syntheticProfile builds a two-sample profile mimicking Go's field
// ordering: samples precede the string table, forcing two-pass
// decoding. One sample has packed values + engine/phase labels, the
// other unpacked values and no labels.
func syntheticProfile(t *testing.T) []byte {
	t.Helper()
	strings := []string{"", "samples", "count", "cpu", "nanoseconds", "engine", "exact", "phase", "solve"}

	var top protoEncoder
	top.bytesField(1, encodeValueType(1, 2)) // samples/count
	top.bytesField(1, encodeValueType(3, 4)) // cpu/nanoseconds

	// Sample 1: packed values [5, 5_000_000], labels engine=exact phase=solve.
	var packed protoEncoder
	packed.varint(5)
	packed.varint(5_000_000)
	var s1 protoEncoder
	s1.varintField(1, 42) // location_id — skipped by the parser
	s1.bytesField(2, packed.buf.Bytes())
	s1.bytesField(3, encodeLabel(5, 6))
	s1.bytesField(3, encodeLabel(7, 8))
	top.bytesField(2, s1.buf.Bytes())

	// Sample 2: unpacked values, no labels.
	var s2 protoEncoder
	s2.varintField(2, 3)
	s2.varintField(2, 3_000_000)
	top.bytesField(2, s2.buf.Bytes())

	for _, s := range strings {
		top.stringField(6, s)
	}
	top.varintField(9, 1_700_000_000_000_000_000) // time_nanos
	top.varintField(10, 250_000_000)              // duration_nanos
	top.bytesField(11, encodeValueType(3, 4))     // period_type cpu/nanoseconds
	top.varintField(12, 10_000_000)               // period
	top.bytesField(7, []byte{0x08, 0x01})         // mapping — skipped
	return top.buf.Bytes()
}

func TestParseSyntheticProfile(t *testing.T) {
	raw := syntheticProfile(t)

	// Parse both plain and gzipped (the runtime always gzips).
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	zw.Write(raw)
	zw.Close()

	for _, tc := range []struct {
		name string
		data []byte
	}{{"plain", raw}, {"gzipped", gz.Bytes()}} {
		p, err := ParseProfile(tc.data)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(p.SampleTypes) != 2 || p.SampleTypes[0].Type != "samples" || p.SampleTypes[1].Type != "cpu" {
			t.Fatalf("%s: sample types %+v", tc.name, p.SampleTypes)
		}
		if p.ValueIndex("cpu") != 1 || p.ValueIndex("nope") != -1 {
			t.Fatalf("%s: ValueIndex(cpu)=%d", tc.name, p.ValueIndex("cpu"))
		}
		if len(p.Samples) != 2 {
			t.Fatalf("%s: %d samples", tc.name, len(p.Samples))
		}
		s1 := p.Samples[0]
		if len(s1.Values) != 2 || s1.Values[0] != 5 || s1.Values[1] != 5_000_000 {
			t.Fatalf("%s: sample 1 values %v", tc.name, s1.Values)
		}
		if s1.Labels[LabelEngine] != "exact" || s1.Labels[LabelPhase] != "solve" {
			t.Fatalf("%s: sample 1 labels %v", tc.name, s1.Labels)
		}
		if got := p.SampleCPUSeconds(s1); got != 0.005 {
			t.Fatalf("%s: cpu seconds %v, want 0.005", tc.name, got)
		}
		s2 := p.Samples[1]
		if len(s2.Values) != 2 || s2.Values[1] != 3_000_000 || len(s2.Labels) != 0 {
			t.Fatalf("%s: sample 2 %+v", tc.name, s2)
		}
		if p.Period != 10_000_000 || p.PeriodType.Type != "cpu" || p.DurationNanos != 250_000_000 {
			t.Fatalf("%s: period %d type %+v duration %d", tc.name, p.Period, p.PeriodType, p.DurationNanos)
		}
	}
}

func TestParseProfileErrors(t *testing.T) {
	if _, err := ParseProfile([]byte{0x1f, 0x8b, 0x00}); err == nil {
		t.Fatal("truncated gzip accepted")
	}
	// A bytes field whose declared length overruns the buffer.
	var e protoEncoder
	e.tag(2, wireBytes)
	e.varint(100)
	e.buf.WriteByte(0x01)
	if _, err := ParseProfile(e.buf.Bytes()); err == nil {
		t.Fatal("truncated field accepted")
	}
}

// TestParseRealProfile round-trips an actual runtime CPU profile
// through the parser: it must decode without error and carry a cpu
// sample dimension.
func TestParseRealProfile(t *testing.T) {
	raw, err := CaptureCPUProfile(50*time.Millisecond, nil)
	if err != nil {
		t.Skipf("cpu profiling unavailable: %v", err)
	}
	p, err := ParseProfile(raw)
	if err != nil {
		t.Fatalf("parse real profile: %v", err)
	}
	if p.ValueIndex("cpu") < 0 && p.PeriodType.Type != "cpu" {
		t.Fatalf("real profile has no cpu dimension: types %+v period %+v", p.SampleTypes, p.PeriodType)
	}
}
