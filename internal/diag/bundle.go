package diag

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// ManifestSchema versions the bundle layout.
const ManifestSchema = "floorpland-diag/1"

// Artifact is one extra file a bundle host contributes (flight ring,
// event tail, SLO state, ...). Write must be safe to call from the
// bundler's worker goroutine.
type Artifact struct {
	Name  string
	Write func(io.Writer) error
}

// BundlerConfig configures the capture pipeline.
type BundlerConfig struct {
	// Dir is where bundles land. Empty disables async triggers and
	// on-disk persistence; synchronous Capture still works (in-memory),
	// which is what GET /debug/bundle uses.
	Dir string
	// Keep bounds how many bundles stay on disk (default 8).
	Keep int
	// MinInterval rate-limits anomaly-triggered captures (default 1m).
	MinInterval time.Duration
	// CPUDuration is the live CPU profile window per bundle (250ms
	// default).
	CPUDuration time.Duration
	// Meta is build/deploy provenance recorded in the manifest.
	Meta map[string]string
	// Artifacts returns the host's extra files, called at capture time.
	Artifacts func() []Artifact
	// Logger receives capture failures (discarded when nil).
	Logger *slog.Logger
}

// Manifest is bundle-internal metadata, written first as manifest.json.
type Manifest struct {
	Schema     string            `json:"schema"`
	Trigger    string            `json:"trigger"`
	Note       string            `json:"note,omitempty"`
	CapturedAt time.Time         `json:"captured_at"`
	GoVersion  string            `json:"go_version"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	CPUs       int               `json:"cpus"`
	Hostname   string            `json:"hostname,omitempty"`
	Meta       map[string]string `json:"meta,omitempty"`
	Contents   []string          `json:"contents"`
	Notes      []string          `json:"notes,omitempty"`
}

// BundleStats is the bundler's exported state, rendered into the
// floorpland_diag_* metric families.
type BundleStats struct {
	Captured    map[string]int64 // by trigger cause
	Errors      int64
	RateLimited int64
	Dropped     int64
}

type bundleReq struct {
	cause string
	note  string
}

// Bundler is the rate-limited diagnostic-bundle capture pipeline.
// Trigger is async and cheap (anomaly paths call it inline); Capture is
// synchronous (debug handler, SIGUSR2, tests).
type Bundler struct {
	cfg  BundlerConfig
	reqs chan bundleReq
	done chan struct{}

	mu       sync.Mutex
	last     time.Time
	captured map[string]int64
	errors   int64
	limited  int64
	dropped  int64
	closed   bool
}

// NewBundler starts the capture worker.
func NewBundler(cfg BundlerConfig) *Bundler {
	if cfg.Keep <= 0 {
		cfg.Keep = 8
	}
	if cfg.MinInterval <= 0 {
		cfg.MinInterval = time.Minute
	}
	if cfg.CPUDuration <= 0 {
		cfg.CPUDuration = 250 * time.Millisecond
	}
	b := &Bundler{
		cfg:      cfg,
		reqs:     make(chan bundleReq, 2),
		done:     make(chan struct{}),
		captured: make(map[string]int64),
	}
	go b.worker()
	return b
}

func (b *Bundler) worker() {
	defer close(b.done)
	for req := range b.reqs {
		if _, _, err := b.Capture(req.cause, req.note); err != nil && b.cfg.Logger != nil {
			b.cfg.Logger.Warn("diag bundle capture failed",
				"trigger", req.cause, "err", err)
		}
	}
}

// Trigger requests an anomaly bundle. It never blocks: requests inside
// the rate-limit window are counted and discarded, and a full queue
// drops the request. No-op when the bundler has no directory.
func (b *Bundler) Trigger(cause, note string) {
	if b.cfg.Dir == "" {
		return
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	if !b.last.IsZero() && time.Since(b.last) < b.cfg.MinInterval {
		b.limited++
		b.mu.Unlock()
		return
	}
	// Reserve the window now so a burst of triggers yields one bundle
	// even though capture itself runs on the worker goroutine.
	b.last = time.Now()
	b.mu.Unlock()

	select {
	case b.reqs <- bundleReq{cause: cause, note: note}:
	default:
		b.mu.Lock()
		b.dropped++
		b.mu.Unlock()
	}
}

// Capture builds a bundle synchronously, bypassing the rate limit (it
// still resets the window, so a manual capture quiets anomaly triggers
// for MinInterval). The bundle bytes and file name are returned; the
// file is persisted (and rotation applied) only when Dir is set.
func (b *Bundler) Capture(cause, note string) (data []byte, name string, err error) {
	now := time.Now().UTC()
	b.mu.Lock()
	b.last = now
	b.mu.Unlock()

	data, manifest, buildErr := b.build(cause, note, now)
	if buildErr != nil {
		b.mu.Lock()
		b.errors++
		b.mu.Unlock()
		return nil, "", buildErr
	}
	name = fmt.Sprintf("bundle-%s.tar.gz", now.Format("20060102T150405.000Z0700"))

	if b.cfg.Dir != "" {
		if err := os.MkdirAll(b.cfg.Dir, 0o755); err != nil {
			b.countError()
			return nil, "", fmt.Errorf("diag: bundle dir: %w", err)
		}
		if err := os.WriteFile(filepath.Join(b.cfg.Dir, name), data, 0o644); err != nil {
			b.countError()
			return nil, "", fmt.Errorf("diag: write bundle: %w", err)
		}
		b.rotate()
	}

	b.mu.Lock()
	b.captured[cause]++
	b.mu.Unlock()
	if b.cfg.Logger != nil {
		b.cfg.Logger.Info("diag bundle captured",
			"trigger", cause, "bundle", name, "bytes", len(data),
			"contents", len(manifest.Contents))
	}
	return data, name, nil
}

func (b *Bundler) countError() {
	b.mu.Lock()
	b.errors++
	b.mu.Unlock()
}

// build assembles the tar.gz in memory.
func (b *Bundler) build(cause, note string, now time.Time) ([]byte, *Manifest, error) {
	man := &Manifest{
		Schema:     ManifestSchema,
		Trigger:    cause,
		Note:       note,
		CapturedAt: now,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		Meta:       b.cfg.Meta,
	}
	if hn, err := os.Hostname(); err == nil {
		man.Hostname = hn
	}

	type file struct {
		name string
		data []byte
	}
	var files []file
	add := func(name string, data []byte) {
		files = append(files, file{name, data})
		man.Contents = append(man.Contents, name)
	}

	// Live CPU profile of the anomaly's aftermath. Degrades to a
	// manifest note when the profiler is busy (e.g. an external
	// StartCPUProfile holder) rather than failing the whole bundle.
	if cpu, err := CaptureCPUProfile(b.cfg.CPUDuration, nil); err == nil {
		add("cpu.pprof", cpu)
	} else {
		man.Notes = append(man.Notes, fmt.Sprintf("cpu.pprof skipped: %v", err))
	}

	var heap bytes.Buffer
	if p := pprof.Lookup("heap"); p != nil {
		if err := p.WriteTo(&heap, 0); err == nil {
			add("heap.pprof", append([]byte(nil), heap.Bytes()...))
		}
	}
	var goroutines bytes.Buffer
	if p := pprof.Lookup("goroutine"); p != nil {
		if err := p.WriteTo(&goroutines, 2); err == nil {
			add("goroutines.txt", append([]byte(nil), goroutines.Bytes()...))
		}
	}

	if b.cfg.Artifacts != nil {
		for _, a := range b.cfg.Artifacts() {
			var buf bytes.Buffer
			if err := a.Write(&buf); err != nil {
				man.Notes = append(man.Notes, fmt.Sprintf("%s skipped: %v", a.Name, err))
				continue
			}
			add(a.Name, append([]byte(nil), buf.Bytes()...))
		}
	}

	manJSON, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return nil, nil, fmt.Errorf("diag: marshal manifest: %w", err)
	}

	var out bytes.Buffer
	zw := gzip.NewWriter(&out)
	tw := tar.NewWriter(zw)
	write := func(name string, data []byte) error {
		hdr := &tar.Header{
			Name:    name,
			Mode:    0o644,
			Size:    int64(len(data)),
			ModTime: now,
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return err
		}
		_, err := tw.Write(data)
		return err
	}
	if err := write("manifest.json", manJSON); err != nil {
		return nil, nil, fmt.Errorf("diag: tar manifest: %w", err)
	}
	for _, f := range files {
		if err := write(f.name, f.data); err != nil {
			return nil, nil, fmt.Errorf("diag: tar %s: %w", f.name, err)
		}
	}
	if err := tw.Close(); err != nil {
		return nil, nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, nil, err
	}
	return out.Bytes(), man, nil
}

// rotate removes the oldest bundles beyond Keep. Timestamped names sort
// chronologically, so lexical order is capture order.
func (b *Bundler) rotate() {
	entries, err := os.ReadDir(b.cfg.Dir)
	if err != nil {
		return
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if strings.HasPrefix(n, "bundle-") && strings.HasSuffix(n, ".tar.gz") {
			names = append(names, n)
		}
	}
	if len(names) <= b.cfg.Keep {
		return
	}
	sort.Strings(names)
	for _, n := range names[:len(names)-b.cfg.Keep] {
		os.Remove(filepath.Join(b.cfg.Dir, n))
	}
}

// Stats snapshots capture counters.
func (b *Bundler) Stats() BundleStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := BundleStats{
		Captured:    make(map[string]int64, len(b.captured)),
		Errors:      b.errors,
		RateLimited: b.limited,
		Dropped:     b.dropped,
	}
	for k, v := range b.captured {
		st.Captured[k] = v
	}
	return st
}

// Close drains the worker. Further Triggers are ignored.
func (b *Bundler) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		<-b.done
		return
	}
	b.closed = true
	b.mu.Unlock()
	close(b.reqs)
	<-b.done
}
