package diag

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// readBundle unpacks a tar.gz into name→contents.
func readBundle(t *testing.T, data []byte) (files map[string][]byte, order []string) {
	t.Helper()
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("bundle not gzipped: %v", err)
	}
	tr := tar.NewReader(zr)
	files = map[string][]byte{}
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("tar: %v", err)
		}
		b, err := io.ReadAll(tr)
		if err != nil {
			t.Fatalf("tar read %s: %v", hdr.Name, err)
		}
		files[hdr.Name] = b
		order = append(order, hdr.Name)
	}
	return files, order
}

func listBundles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "bundle-") && strings.HasSuffix(e.Name(), ".tar.gz") {
			names = append(names, e.Name())
		}
	}
	return names
}

func TestBundleTriggerRateLimitAndContents(t *testing.T) {
	dir := t.TempDir()
	b := NewBundler(BundlerConfig{
		Dir:         dir,
		MinInterval: time.Hour,
		CPUDuration: 10 * time.Millisecond,
		Meta:        map[string]string{"service": "floorpland-test"},
		Artifacts: func() []Artifact {
			return []Artifact{
				{Name: "flight.json", Write: func(w io.Writer) error {
					_, err := io.WriteString(w, `[{"seq":1,"outcome":"panic"}]`)
					return err
				}},
				{Name: "broken.json", Write: func(io.Writer) error {
					return io.ErrUnexpectedEOF
				}},
			}
		},
	})
	defer b.Close()

	b.Trigger("panic", "engine exact seq 1")
	// Inside the rate-limit window: counted, not captured.
	b.Trigger("budget-overrun", "again")

	deadline := time.Now().Add(10 * time.Second)
	for len(listBundles(t, dir)) == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no bundle captured in 10s; stats %+v", b.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Give the worker a beat, then assert exactly one bundle.
	time.Sleep(50 * time.Millisecond)
	names := listBundles(t, dir)
	if len(names) != 1 {
		t.Fatalf("bundles on disk = %v, want exactly 1", names)
	}

	st := b.Stats()
	if st.Captured["panic"] != 1 || st.RateLimited != 1 || st.Errors != 0 {
		t.Fatalf("stats = %+v", st)
	}

	data, err := os.ReadFile(filepath.Join(dir, names[0]))
	if err != nil {
		t.Fatal(err)
	}
	files, order := readBundle(t, data)
	if len(order) == 0 || order[0] != "manifest.json" {
		t.Fatalf("manifest.json not first: %v", order)
	}
	var man Manifest
	if err := json.Unmarshal(files["manifest.json"], &man); err != nil {
		t.Fatalf("manifest: %v", err)
	}
	if man.Schema != ManifestSchema || man.Trigger != "panic" || man.Note != "engine exact seq 1" {
		t.Fatalf("manifest = %+v", man)
	}
	if man.Meta["service"] != "floorpland-test" {
		t.Fatalf("meta lost: %+v", man.Meta)
	}
	if string(files["flight.json"]) != `[{"seq":1,"outcome":"panic"}]` {
		t.Fatalf("flight.json = %q", files["flight.json"])
	}
	// The failing artifact degrades to a manifest note, not an error.
	if _, ok := files["broken.json"]; ok {
		t.Fatal("failing artifact was included")
	}
	foundNote := false
	for _, n := range man.Notes {
		if strings.Contains(n, "broken.json") {
			foundNote = true
		}
	}
	if !foundNote {
		t.Fatalf("no manifest note for failed artifact: %v", man.Notes)
	}
	if cpu, ok := files["cpu.pprof"]; ok {
		if _, err := ParseProfile(cpu); err != nil {
			t.Fatalf("cpu.pprof unparseable: %v", err)
		}
	} else if len(man.Notes) == 0 {
		t.Fatal("bundle has neither cpu.pprof nor a skip note")
	}
	if _, ok := files["heap.pprof"]; !ok {
		t.Fatal("heap.pprof missing")
	}
	if g, ok := files["goroutines.txt"]; !ok || !bytes.Contains(g, []byte("goroutine")) {
		t.Fatal("goroutines.txt missing or empty")
	}
	for _, name := range man.Contents {
		if _, ok := files[name]; !ok {
			t.Fatalf("manifest lists %s but bundle lacks it", name)
		}
	}
}

func TestCaptureBypassesRateLimit(t *testing.T) {
	b := NewBundler(BundlerConfig{MinInterval: time.Hour, CPUDuration: 5 * time.Millisecond})
	defer b.Close()

	// No Dir: triggers are no-ops, synchronous capture still works.
	b.Trigger("panic", "ignored")
	data, name, err := b.Capture("manual", "debug handler")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(name, "bundle-") || len(data) == 0 {
		t.Fatalf("capture = %q, %d bytes", name, len(data))
	}
	data2, _, err := b.Capture("manual", "again inside the window")
	if err != nil || len(data2) == 0 {
		t.Fatalf("second capture: %v", err)
	}
	st := b.Stats()
	if st.Captured["manual"] != 2 || st.Captured["panic"] != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBundleRotation(t *testing.T) {
	dir := t.TempDir()
	b := NewBundler(BundlerConfig{Dir: dir, Keep: 2, CPUDuration: time.Millisecond})
	defer b.Close()
	for i := 0; i < 4; i++ {
		if _, _, err := b.Capture("manual", ""); err != nil {
			t.Fatal(err)
		}
		time.Sleep(3 * time.Millisecond) // distinct millisecond timestamps
	}
	names := listBundles(t, dir)
	if len(names) != 2 {
		t.Fatalf("rotation kept %d bundles: %v", len(names), names)
	}
}

func TestTriggerAfterCloseIsSafe(t *testing.T) {
	b := NewBundler(BundlerConfig{Dir: t.TempDir(), CPUDuration: time.Millisecond})
	b.Close()
	b.Close() // idempotent
	b.Trigger("panic", "after close")
}
