package diag

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
)

// A minimal decoder for the pprof profile.proto wire format, covering
// exactly what the sampler and the tests need: sample types, sample
// values, and string-valued sample labels. Hand-rolled because the repo
// takes no external dependencies; the full schema (locations, mappings,
// functions) is deliberately skipped over.
//
// Field numbers (from profile.proto):
//
//	Profile:   1 sample_type (ValueType), 2 sample (Sample),
//	           6 string_table, 9 time_nanos, 10 duration_nanos,
//	           11 period_type (ValueType), 12 period
//	ValueType: 1 type (string idx), 2 unit (string idx)
//	Sample:    2 value (repeated int64), 3 label (Label)
//	Label:     1 key (string idx), 2 str (string idx)
//
// Go's encoder emits fields in field order, so the string table (6)
// arrives after the samples (2): decoding is two-pass — raw sub-message
// bytes are collected first, string indices resolved after.

// ValueType names one sample-value dimension, e.g. {cpu, nanoseconds}.
type ValueType struct {
	Type string
	Unit string
}

// Sample is one profile sample: a value per sample type plus its
// string-valued pprof labels.
type Sample struct {
	Values []int64
	Labels map[string]string
}

// Profile is the decoded subset of a pprof profile.
type Profile struct {
	SampleTypes   []ValueType
	Samples       []Sample
	PeriodType    ValueType
	Period        int64
	TimeNanos     int64
	DurationNanos int64
}

// ValueIndex returns the index of the sample-value dimension named typ
// ("cpu", "samples", ...), or -1 if absent.
func (p *Profile) ValueIndex(typ string) int {
	for i, st := range p.SampleTypes {
		if st.Type == typ {
			return i
		}
	}
	return -1
}

// SampleCPUSeconds returns the CPU time of one sample in seconds: the
// "cpu" value when the profile has one (unit nanoseconds), falling back
// to samples×period for period-typed cpu profiles. Zero when the
// profile carries no CPU dimension.
func (p *Profile) SampleCPUSeconds(s Sample) float64 {
	if i := p.ValueIndex("cpu"); i >= 0 && i < len(s.Values) {
		return float64(s.Values[i]) / 1e9
	}
	if p.PeriodType.Type == "cpu" && p.Period > 0 {
		if i := p.ValueIndex("samples"); i >= 0 && i < len(s.Values) {
			return float64(s.Values[i]) * float64(p.Period) / 1e9
		}
	}
	return 0
}

// gzipMagic prefixes every profile Go's runtime writes.
var gzipMagic = []byte{0x1f, 0x8b}

// ParseProfile decodes a (possibly gzipped) pprof protobuf profile.
func ParseProfile(data []byte) (*Profile, error) {
	if bytes.HasPrefix(data, gzipMagic) {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("diag: gunzip profile: %w", err)
		}
		raw, err := io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("diag: gunzip profile: %w", err)
		}
		data = raw
	}

	// Pass 1: split the top-level message, stashing raw sub-messages.
	var (
		strtab      []string
		sampleTypes [][]byte
		samples     [][]byte
		periodType  []byte
		prof        Profile
	)
	d := &protoDecoder{buf: data}
	for d.more() {
		field, wire, err := d.tag()
		if err != nil {
			return nil, err
		}
		switch {
		case field == 1 && wire == wireBytes: // sample_type
			b, err := d.bytes()
			if err != nil {
				return nil, err
			}
			sampleTypes = append(sampleTypes, b)
		case field == 2 && wire == wireBytes: // sample
			b, err := d.bytes()
			if err != nil {
				return nil, err
			}
			samples = append(samples, b)
		case field == 6 && wire == wireBytes: // string_table
			b, err := d.bytes()
			if err != nil {
				return nil, err
			}
			strtab = append(strtab, string(b))
		case field == 9 && wire == wireVarint:
			v, err := d.varint()
			if err != nil {
				return nil, err
			}
			prof.TimeNanos = int64(v)
		case field == 10 && wire == wireVarint:
			v, err := d.varint()
			if err != nil {
				return nil, err
			}
			prof.DurationNanos = int64(v)
		case field == 11 && wire == wireBytes: // period_type
			b, err := d.bytes()
			if err != nil {
				return nil, err
			}
			periodType = b
		case field == 12 && wire == wireVarint:
			v, err := d.varint()
			if err != nil {
				return nil, err
			}
			prof.Period = int64(v)
		default:
			if err := d.skip(wire); err != nil {
				return nil, err
			}
		}
	}

	// Pass 2: resolve string indices now that the table is complete.
	str := func(i uint64) string {
		if i < uint64(len(strtab)) {
			return strtab[i]
		}
		return ""
	}
	for _, b := range sampleTypes {
		vt, err := parseValueType(b, str)
		if err != nil {
			return nil, err
		}
		prof.SampleTypes = append(prof.SampleTypes, vt)
	}
	if periodType != nil {
		vt, err := parseValueType(periodType, str)
		if err != nil {
			return nil, err
		}
		prof.PeriodType = vt
	}
	for _, b := range samples {
		s, err := parseSample(b, str)
		if err != nil {
			return nil, err
		}
		prof.Samples = append(prof.Samples, s)
	}
	return &prof, nil
}

func parseValueType(b []byte, str func(uint64) string) (ValueType, error) {
	var vt ValueType
	d := &protoDecoder{buf: b}
	for d.more() {
		field, wire, err := d.tag()
		if err != nil {
			return vt, err
		}
		switch {
		case field == 1 && wire == wireVarint:
			v, err := d.varint()
			if err != nil {
				return vt, err
			}
			vt.Type = str(v)
		case field == 2 && wire == wireVarint:
			v, err := d.varint()
			if err != nil {
				return vt, err
			}
			vt.Unit = str(v)
		default:
			if err := d.skip(wire); err != nil {
				return vt, err
			}
		}
	}
	return vt, nil
}

func parseSample(b []byte, str func(uint64) string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	d := &protoDecoder{buf: b}
	for d.more() {
		field, wire, err := d.tag()
		if err != nil {
			return s, err
		}
		switch {
		case field == 2 && wire == wireVarint: // unpacked value
			v, err := d.varint()
			if err != nil {
				return s, err
			}
			s.Values = append(s.Values, int64(v))
		case field == 2 && wire == wireBytes: // packed values
			pb, err := d.bytes()
			if err != nil {
				return s, err
			}
			pd := &protoDecoder{buf: pb}
			for pd.more() {
				v, err := pd.varint()
				if err != nil {
					return s, err
				}
				s.Values = append(s.Values, int64(v))
			}
		case field == 3 && wire == wireBytes: // label
			lb, err := d.bytes()
			if err != nil {
				return s, err
			}
			key, val, err := parseLabel(lb, str)
			if err != nil {
				return s, err
			}
			if key != "" && val != "" {
				s.Labels[key] = val
			}
		default:
			if err := d.skip(wire); err != nil {
				return s, err
			}
		}
	}
	return s, nil
}

func parseLabel(b []byte, str func(uint64) string) (key, val string, err error) {
	d := &protoDecoder{buf: b}
	for d.more() {
		field, wire, err := d.tag()
		if err != nil {
			return "", "", err
		}
		switch {
		case field == 1 && wire == wireVarint:
			v, err := d.varint()
			if err != nil {
				return "", "", err
			}
			key = str(v)
		case field == 2 && wire == wireVarint:
			v, err := d.varint()
			if err != nil {
				return "", "", err
			}
			val = str(v)
		default:
			if err := d.skip(wire); err != nil {
				return "", "", err
			}
		}
	}
	return key, val, nil
}

// Protobuf wire types.
const (
	wireVarint = 0
	wireI64    = 1
	wireBytes  = 2
	wireI32    = 5
)

var errTruncated = errors.New("diag: truncated profile")

type protoDecoder struct {
	buf []byte
	pos int
}

func (d *protoDecoder) more() bool { return d.pos < len(d.buf) }

func (d *protoDecoder) varint() (uint64, error) {
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if d.pos >= len(d.buf) {
			return 0, errTruncated
		}
		b := d.buf[d.pos]
		d.pos++
		v |= uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			return v, nil
		}
	}
	return 0, errors.New("diag: varint overflow")
}

func (d *protoDecoder) tag() (field int, wire int, err error) {
	v, err := d.varint()
	if err != nil {
		return 0, 0, err
	}
	return int(v >> 3), int(v & 7), nil
}

func (d *protoDecoder) bytes() ([]byte, error) {
	n, err := d.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.buf)-d.pos) {
		return nil, errTruncated
	}
	b := d.buf[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return b, nil
}

func (d *protoDecoder) skip(wire int) error {
	switch wire {
	case wireVarint:
		_, err := d.varint()
		return err
	case wireI64:
		if len(d.buf)-d.pos < 8 {
			return errTruncated
		}
		d.pos += 8
		return nil
	case wireBytes:
		_, err := d.bytes()
		return err
	case wireI32:
		if len(d.buf)-d.pos < 4 {
			return errTruncated
		}
		d.pos += 4
		return nil
	default:
		return fmt.Errorf("diag: unknown wire type %d", wire)
	}
}
