package diag

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestSamplerCyclesAndStats(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling integration test")
	}
	var cycles atomic.Int64
	s := NewSampler(SamplerConfig{
		Every:       40 * time.Millisecond,
		CPUDuration: 15 * time.Millisecond,
		Ring:        2,
		OnCycle:     func() { cycles.Add(1) },
	})
	defer s.Stop()

	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().Cycles < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("sampler made %d cycles in 10s", s.Stats().Cycles)
		}
		time.Sleep(10 * time.Millisecond)
	}

	st := s.Stats()
	if st.Cycles < 2 {
		t.Fatalf("cycles = %d", st.Cycles)
	}
	if cycles.Load() < st.Cycles {
		t.Fatalf("OnCycle fired %d times for %d cycles", cycles.Load(), st.Cycles)
	}
	if st.HeapAllocBytes == 0 || st.Goroutines == 0 {
		t.Fatalf("gauges not set: %+v", st)
	}

	raw := s.LatestCPUProfile()
	if raw == nil {
		t.Fatal("no profile retained in ring")
	}
	if _, err := ParseProfile(raw); err != nil {
		t.Fatalf("ring profile unparseable: %v", err)
	}

	s.Stop() // idempotent with the deferred Stop
	st2 := s.Stats()
	time.Sleep(60 * time.Millisecond)
	if got := s.Stats().Cycles; got != st2.Cycles {
		t.Fatalf("sampler still cycling after Stop: %d -> %d", st2.Cycles, got)
	}
}

func TestSamplerDefaults(t *testing.T) {
	s := NewSampler(SamplerConfig{Every: time.Hour})
	defer s.Stop()
	if s.cfg.CPUDuration != 250*time.Millisecond {
		t.Fatalf("default CPUDuration = %v", s.cfg.CPUDuration)
	}
	if s.cfg.Ring != 4 {
		t.Fatalf("default Ring = %d", s.cfg.Ring)
	}
	// A cadence shorter than the default window clamps the window.
	s2 := NewSampler(SamplerConfig{Every: 100 * time.Millisecond})
	defer s2.Stop()
	if s2.cfg.CPUDuration != 50*time.Millisecond {
		t.Fatalf("clamped CPUDuration = %v", s2.cfg.CPUDuration)
	}
}
