package diag

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestJoinDigest(t *testing.T) {
	a := LabelSet{Engine: "exact", Endpoint: "/v1/solve", Digest: "abc", RequestID: "r1"}
	if a.JoinDigest() != a.JoinDigest() {
		t.Fatal("JoinDigest not deterministic")
	}
	if len(a.JoinDigest()) != 16 {
		t.Fatalf("JoinDigest length %d, want 16", len(a.JoinDigest()))
	}
	b := a
	b.RequestID = "r2"
	if a.JoinDigest() == b.JoinDigest() {
		t.Fatal("distinct requests share a join digest")
	}
	// Phase is deliberately excluded: one solve spans many phases.
	c := a
	c.Phase = "wire"
	if a.JoinDigest() != c.JoinDigest() {
		t.Fatal("phase changed the join digest")
	}
	// Field boundaries matter (NUL separation): ("ab","c") != ("a","bc").
	d := LabelSet{Engine: "ab", Endpoint: "c"}
	e := LabelSet{Engine: "a", Endpoint: "bc"}
	if d.JoinDigest() == e.JoinDigest() {
		t.Fatal("field boundary collision")
	}
}

func TestPairsSkipsEmptyAndTruncatesDigest(t *testing.T) {
	ls := LabelSet{Engine: "exact", Digest: "0123456789abcdef"}
	pairs := ls.pairs()
	m := map[string]string{}
	for i := 0; i+1 < len(pairs); i += 2 {
		m[pairs[i]] = pairs[i+1]
	}
	if m[LabelEngine] != "exact" {
		t.Fatalf("pairs %v", pairs)
	}
	if m[LabelDigest] != "01234567" {
		t.Fatalf("digest not truncated to prefix: %q", m[LabelDigest])
	}
	if _, ok := m[LabelEndpoint]; ok {
		t.Fatal("empty endpoint emitted")
	}
	if m[LabelJoin] != ls.JoinDigest() {
		t.Fatal("join digest missing from pairs")
	}
}

func TestDoDisabledIsPassthrough(t *testing.T) {
	prev := LabelingEnabled()
	defer SetLabeling(prev)
	SetLabeling(false)

	type key struct{}
	ctx := context.WithValue(context.Background(), key{}, "v")
	ran := false
	Do(ctx, LabelSet{Engine: "exact"}, func(got context.Context) {
		ran = true
		if got != ctx {
			t.Error("context was rewrapped with labeling off")
		}
	})
	if !ran {
		t.Fatal("fn not called")
	}
}

func TestLabelProbeUnboundIsTransparent(t *testing.T) {
	prev := LabelingEnabled()
	defer SetLabeling(prev)
	SetLabeling(true)

	p := NewLabelProbe(nil)
	sp := p.Span("exact") // unbound: must not relabel or wrap
	if _, ok := sp.(*labelSpan); ok {
		t.Fatal("unbound probe wrapped the span")
	}
	sp.End(obs.OutcomeSolved, 0)
}

// TestProfileCarriesEngineLabels is the end-to-end label check: work
// spun under Do + a LabelProbe span shows up in a captured CPU profile
// with the engine/phase goroutine labels attached.
func TestProfileCarriesEngineLabels(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling integration test")
	}
	prev := LabelingEnabled()
	defer SetLabeling(prev)
	SetLabeling(true)

	const window = 400 * time.Millisecond
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Dominate the profile window with labeled spinners.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			probe := NewLabelProbe(obs.Nop)
			ls := LabelSet{Engine: "spin-test", Endpoint: "/test", Digest: "deadbeefcafe"}
			Do(context.Background(), ls, func(ctx context.Context) {
				probe.Bind(ctx)
				sp := probe.Span("spin-test/hot")
				defer sp.End(obs.OutcomeSolved, 0)
				x := 0
				for {
					select {
					case <-stop:
						runtime.KeepAlive(x)
						return
					default:
						x += x*31 + 7
					}
				}
			})
		}()
	}

	raw, err := CaptureCPUProfile(window, nil)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Skipf("cpu profiling unavailable: %v", err)
	}
	p, err := ParseProfile(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Samples) == 0 {
		t.Skip("no samples captured (starved CI runner)")
	}
	var labeled *Sample
	for i := range p.Samples {
		if p.Samples[i].Labels[LabelEngine] == "spin-test" {
			labeled = &p.Samples[i]
			break
		}
	}
	if labeled == nil {
		t.Fatalf("no sample carries engine=spin-test; got %d samples", len(p.Samples))
	}
	if labeled.Labels[LabelPhase] != "hot" {
		t.Fatalf("phase label = %q, want hot (labels %v)", labeled.Labels[LabelPhase], labeled.Labels)
	}
	if labeled.Labels[LabelDigest] != "deadbeef" {
		t.Fatalf("digest label = %q, want deadbeef", labeled.Labels[LabelDigest])
	}
	want := LabelSet{Engine: "spin-test", Endpoint: "/test", Digest: "deadbeefcafe"}.JoinDigest()
	if labeled.Labels[LabelJoin] != want {
		t.Fatalf("join label = %q, want %q", labeled.Labels[LabelJoin], want)
	}
}
