package diag

import (
	"context"
	"hash/fnv"
	"runtime/pprof"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Goroutine-label keys. Kept short and stable: they become pprof tag
// names resolvable with `go tool pprof -tags`.
const (
	// LabelEngine is the engine (or fallback-stage engine) on CPU.
	LabelEngine = "engine"
	// LabelPhase is the span stage within the engine ("solve" for the
	// engine's own span, the stage suffix for "<engine>/<stage>" spans).
	LabelPhase = "phase"
	// LabelEndpoint is the serving endpoint ("/v1/solve", "session").
	LabelEndpoint = "endpoint"
	// LabelDigest is the request-digest prefix (first 8 hex chars), the
	// cache/dedup identity of the problem being solved.
	LabelDigest = "digest"
	// LabelRequestID is the per-request id when the caller supplied one.
	LabelRequestID = "rid"
	// LabelJoin is the join digest: the same value is stored on the
	// solve's flight record (flight.Record.LabelDigest), so a profile
	// sample joins back to the exact solve that was on CPU.
	LabelJoin = "ldig"
)

// digestPrefixLen truncates request digests on the label (full digests
// stay on the flight record); 8 hex chars keep tag cardinality sane.
const digestPrefixLen = 8

var labeling atomic.Bool

// SetLabeling switches goroutine labeling on or off process-wide.
// Off (the default) makes Do and LabelProbe allocation-free
// pass-throughs.
func SetLabeling(on bool) { labeling.Store(on) }

// LabelingEnabled reports whether goroutine labeling is on.
func LabelingEnabled() bool { return labeling.Load() }

// LabelSet is the identity a unit of work runs under. Empty fields are
// omitted from the goroutine labels.
type LabelSet struct {
	Engine    string
	Phase     string
	Endpoint  string
	Digest    string // full request digest; truncated on the label
	RequestID string
}

// JoinDigest derives the stable join key linking profile samples to
// flight records: a 64-bit FNV-1a over the request-identity fields
// (phase excluded — one solve spans many phases), formatted %016x.
func (ls LabelSet) JoinDigest() string {
	h := fnv.New64a()
	for _, s := range []string{ls.Engine, ls.Endpoint, ls.Digest, ls.RequestID} {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	const hex = "0123456789abcdef"
	sum := h.Sum64()
	var buf [16]byte
	for i := 15; i >= 0; i-- {
		buf[i] = hex[sum&0xf]
		sum >>= 4
	}
	return string(buf[:])
}

// pairs flattens the set into pprof.Labels arguments, skipping empties.
func (ls LabelSet) pairs() []string {
	out := make([]string, 0, 12)
	add := func(k, v string) {
		if v != "" {
			out = append(out, k, v)
		}
	}
	add(LabelEngine, ls.Engine)
	add(LabelPhase, ls.Phase)
	add(LabelEndpoint, ls.Endpoint)
	d := ls.Digest
	if len(d) > digestPrefixLen {
		d = d[:digestPrefixLen]
	}
	add(LabelDigest, d)
	add(LabelRequestID, ls.RequestID)
	add(LabelJoin, ls.JoinDigest())
	return out
}

// Do runs fn with ls applied as goroutine pprof labels (inherited by
// any goroutines fn starts). When labeling is disabled it calls fn
// directly with no allocation.
func Do(ctx context.Context, ls LabelSet, fn func(context.Context)) {
	if !labeling.Load() {
		fn(ctx)
		return
	}
	pprof.Do(ctx, pprof.Labels(ls.pairs()...), fn)
}

// LabelProbe wraps an obs.Probe and keeps the running goroutine's
// engine/phase labels in sync with the open span: Span("milp-ho/wire")
// relabels the goroutine {engine=milp-ho, phase=wire} for the span's
// lifetime and restores the solve's base labels on End. Fallback-chain
// stages therefore self-attribute — each member engine opens its own
// span, so profile samples land on the stage actually on CPU.
//
// Bind must be called from inside the Do closure (after the base labels
// are on the context) before the solve runs; an unbound LabelProbe is a
// transparent pass-through.
type LabelProbe struct {
	inner obs.Probe
	base  atomic.Value // context.Context carrying the solve's base labels
}

// NewLabelProbe wraps inner (obs.Nop when nil).
func NewLabelProbe(inner obs.Probe) *LabelProbe {
	if inner == nil {
		inner = obs.Nop
	}
	return &LabelProbe{inner: inner}
}

// Bind records ctx as the label restore point: span End resets the
// goroutine to ctx's labels rather than to none.
func (p *LabelProbe) Bind(ctx context.Context) { p.base.Store(ctx) }

// Inner returns the wrapped probe (for callers that need the recorder).
func (p *LabelProbe) Inner() obs.Probe { return p.inner }

// Span opens the inner span and, when labeling is active and the probe
// is bound, relabels the calling goroutine for the span's duration.
func (p *LabelProbe) Span(name string) obs.Span {
	sp := p.inner.Span(name)
	if !labeling.Load() {
		return sp
	}
	base, _ := p.base.Load().(context.Context)
	if base == nil {
		return sp
	}
	engine, phase := obs.SplitSpan(name)
	labeled := pprof.WithLabels(base, pprof.Labels(LabelEngine, engine, LabelPhase, phase))
	pprof.SetGoroutineLabels(labeled)
	return &labelSpan{Span: sp, base: base}
}

// labelSpan restores the solve's base labels when the stage ends.
type labelSpan struct {
	obs.Span
	base context.Context
}

func (s *labelSpan) End(outcome obs.Outcome, slack time.Duration) {
	pprof.SetGoroutineLabels(s.base)
	s.Span.End(outcome, slack)
}
