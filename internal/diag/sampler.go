package diag

import (
	"bytes"
	"fmt"
	"log/slog"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"time"
)

// cpuMu serializes CPU-profile capture: the runtime allows only one
// StartCPUProfile at a time process-wide, and both the sampler and the
// bundler want one.
var cpuMu sync.Mutex

// CaptureCPUProfile records a CPU profile for d (or until cancel
// closes) and returns the gzipped protobuf bytes. It serializes with
// every other capture in the process; if something outside this package
// holds the profiler, it returns an error rather than waiting for it.
func CaptureCPUProfile(d time.Duration, cancel <-chan struct{}) ([]byte, error) {
	cpuMu.Lock()
	defer cpuMu.Unlock()
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		return nil, fmt.Errorf("diag: start cpu profile: %w", err)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-cancel:
	}
	pprof.StopCPUProfile()
	return buf.Bytes(), nil
}

// SamplerConfig configures the background profiler.
type SamplerConfig struct {
	// Every is the sampling cadence (required, > 0).
	Every time.Duration
	// CPUDuration is the length of each CPU profile window (250ms
	// default). Must be shorter than Every.
	CPUDuration time.Duration
	// Ring is how many recent raw CPU profiles to retain (default 4).
	Ring int
	// OnCycle, when set, runs after each completed cycle (the server
	// uses it to drive SLO evaluation between scrapes).
	OnCycle func()
	// Logger receives per-cycle errors (discarded when nil).
	Logger *slog.Logger
}

// CPUShare is the aggregated CPU attribution of one {engine, phase}
// label pair across all sampled profiles.
type CPUShare struct {
	Engine  string
	Phase   string
	Seconds float64
}

// ProfileStats is the sampler's exported state, rendered into the
// floorpland_profile_* metric families.
type ProfileStats struct {
	Cycles         int64
	Errors         int64
	Shares         []CPUShare // sorted by engine, then phase
	HeapAllocBytes uint64
	Goroutines     int
}

type shareKey struct{ engine, phase string }

// Sampler periodically captures short CPU profiles, attributes their
// samples by goroutine label, and keeps the latest raw profiles.
type Sampler struct {
	cfg  SamplerConfig
	stop chan struct{}
	done chan struct{}

	mu         sync.Mutex
	cycles     int64
	errors     int64
	shares     map[shareKey]float64
	ring       [][]byte
	heapAlloc  uint64
	goroutines int
}

// NewSampler starts the background sampling loop.
func NewSampler(cfg SamplerConfig) *Sampler {
	if cfg.CPUDuration <= 0 {
		cfg.CPUDuration = 250 * time.Millisecond
	}
	if cfg.CPUDuration >= cfg.Every {
		cfg.CPUDuration = cfg.Every / 2
	}
	if cfg.Ring <= 0 {
		cfg.Ring = 4
	}
	s := &Sampler{
		cfg:    cfg,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		shares: make(map[shareKey]float64),
	}
	go s.loop()
	return s
}

func (s *Sampler) loop() {
	defer close(s.done)
	tick := time.NewTicker(s.cfg.Every)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			s.cycle()
		}
	}
}

func (s *Sampler) cycle() {
	raw, err := CaptureCPUProfile(s.cfg.CPUDuration, s.stop)
	if err != nil {
		s.fail("cpu profile", err)
		return
	}
	prof, err := ParseProfile(raw)
	if err != nil {
		s.fail("parse profile", err)
		return
	}

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	s.mu.Lock()
	for _, sample := range prof.Samples {
		sec := prof.SampleCPUSeconds(sample)
		if sec == 0 {
			continue
		}
		k := shareKey{sample.Labels[LabelEngine], sample.Labels[LabelPhase]}
		if k.engine == "" {
			k.engine = "unlabeled"
		}
		if k.phase == "" {
			k.phase = "unlabeled"
		}
		s.shares[k] += sec
	}
	s.ring = append(s.ring, raw)
	if len(s.ring) > s.cfg.Ring {
		s.ring = s.ring[len(s.ring)-s.cfg.Ring:]
	}
	s.cycles++
	s.heapAlloc = ms.HeapAlloc
	s.goroutines = runtime.NumGoroutine()
	s.mu.Unlock()

	if s.cfg.OnCycle != nil {
		s.cfg.OnCycle()
	}
}

func (s *Sampler) fail(what string, err error) {
	s.mu.Lock()
	s.errors++
	s.mu.Unlock()
	if s.cfg.Logger != nil {
		s.cfg.Logger.Warn("diag sampler cycle failed", "stage", what, "err", err)
	}
}

// Stats snapshots the sampler's aggregate state.
func (s *Sampler) Stats() ProfileStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := ProfileStats{
		Cycles:         s.cycles,
		Errors:         s.errors,
		HeapAllocBytes: s.heapAlloc,
		Goroutines:     s.goroutines,
	}
	for k, v := range s.shares {
		st.Shares = append(st.Shares, CPUShare{Engine: k.engine, Phase: k.phase, Seconds: v})
	}
	sort.Slice(st.Shares, func(i, j int) bool {
		if st.Shares[i].Engine != st.Shares[j].Engine {
			return st.Shares[i].Engine < st.Shares[j].Engine
		}
		return st.Shares[i].Phase < st.Shares[j].Phase
	})
	return st
}

// LatestCPUProfile returns the most recent raw profile, or nil.
func (s *Sampler) LatestCPUProfile() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.ring) == 0 {
		return nil
	}
	return s.ring[len(s.ring)-1]
}

// Stop halts the loop and waits for the in-flight cycle to finish.
func (s *Sampler) Stop() {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	<-s.done
}
