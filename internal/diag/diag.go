// Package diag is the continuous-profiling and diagnostics layer: it
// closes the detect→diagnose loop that the SLO tracker (internal/slo)
// and the wide-event exporter (internal/telemetry) open.
//
// It has three cooperating parts:
//
//   - Attributed profiling (labels.go): goroutine pprof labels carrying
//     engine, phase, endpoint and request-digest prefix are threaded
//     through the obs span API, so every CPU-profile sample decomposes
//     by engine and fallback stage. LabelProbe wraps any obs.Probe and
//     re-labels the running goroutine as spans open and close; Do wraps
//     a whole solve. Labeling is off by default (SetLabeling) and costs
//     nothing when off — see BenchmarkProfileLabelOverhead.
//
//   - The background Sampler (sampler.go): takes short CPU profiles on
//     a configurable cadence, parses them with the in-repo pprof
//     decoder (pprofparse.go — no external deps), aggregates per-label
//     CPU shares for the /metrics families
//     floorpland_profile_cpu_seconds_total{engine,phase}, and keeps a
//     ring of recent raw profiles for bundles.
//
//   - The Bundler (bundle.go): a rate-limited capture pipeline that, on
//     an anomaly trigger (SLO alert, budget overrun, panic or invalid
//     outcome, reconfig rollback) or on demand (GET /debug/bundle,
//     SIGUSR2, floorplanctl diag), snapshots a self-contained
//     bundle-<ts>.tar.gz: live CPU profile, heap and goroutine dumps,
//     flight-ring JSON, event tail, SLO and breaker state, and build
//     provenance, with on-disk rotation.
package diag
