package floorplanner_test

import (
	"context"
	"testing"
	"time"

	floorplanner "repro"
	"repro/internal/sdr"
)

// TestEngineProbeContract asserts the telemetry half of the engine
// contract (DESIGN.md "Observability"): every registered engine, solving
// the paper's SDR instance under a recording probe, (a) ends a span named
// after the engine with a definitive outcome, (b) emits at least one
// incumbent on that span, and (c) keeps that span's incumbent trajectory
// nonincreasing — each emission must be an improvement on the problem
// objective scale (stage sub-spans such as "milp-o/waste" or
// "annealing/energy" carry their own scales and are exempt).
func TestEngineProbeContract(t *testing.T) {
	if testing.Short() {
		t.Skip("probe contract test runs every engine on SDR; skipped in -short")
	}
	p := sdr.Problem()
	for _, name := range floorplanner.EngineNames() {
		t.Run(name, func(t *testing.T) {
			rec := floorplanner.NewRecorder()
			sol, err := floorplanner.Solve(context.Background(), p, floorplanner.Options{
				Engine:    name,
				TimeLimit: 10 * time.Second,
				Seed:      1,
				Probe:     rec,
			})
			if err != nil {
				t.Fatalf("solve failed: %v", err)
			}
			if sol == nil {
				t.Fatal("nil solution with nil error")
			}

			end, ok := rec.EndOf(name)
			if !ok {
				t.Fatalf("engine span %q never ended; spans seen: %v", name, rec.SpanNames())
			}
			if got := string(end.Outcome); got != "proven" && got != "solved" {
				t.Errorf("engine span ended with outcome %q on a successful solve", got)
			}

			pts := rec.Incumbents(name)
			if len(pts) == 0 {
				t.Fatalf("engine span %q emitted no incumbents; spans seen: %v", name, rec.SpanNames())
			}
			for i := 1; i < len(pts); i++ {
				if pts[i].Objective > pts[i-1].Objective {
					t.Errorf("incumbent %d worsened: %g after %g (trajectory must be nonincreasing)",
						i, pts[i].Objective, pts[i-1].Objective)
				}
			}
			// The last incumbent must be the returned solution's objective:
			// the trajectory ends where the answer is.
			if got, want := pts[len(pts)-1].Objective, sol.Objective(p); got != want {
				t.Errorf("final incumbent %g != returned objective %g", got, want)
			}
		})
	}
}

// TestEngineProbeEndsOnCancel asserts that the engine span reaches its
// terminal End even when the solve never really starts: a pre-canceled
// context must still produce exactly one end record per engine span, so a
// trace can never show a span that silently vanished.
func TestEngineProbeEndsOnCancel(t *testing.T) {
	p := sdr.Problem()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range floorplanner.EngineNames() {
		t.Run(name, func(t *testing.T) {
			rec := floorplanner.NewRecorder()
			_, err := floorplanner.Solve(ctx, p, floorplanner.Options{
				Engine:    name,
				TimeLimit: time.Hour,
				Seed:      1,
				Probe:     rec,
			})
			if err == nil {
				t.Fatal("nil error on a pre-canceled context")
			}
			end, ok := rec.EndOf(name)
			if !ok {
				t.Fatalf("engine span %q never ended on the cancel path; spans seen: %v", name, rec.SpanNames())
			}
			if got := string(end.Outcome); got == "proven" || got == "solved" {
				t.Errorf("canceled solve ended with success outcome %q", got)
			}
			ends := 0
			for _, e := range rec.Ends() {
				if e.Span == name {
					ends++
				}
			}
			if ends != 1 {
				t.Errorf("engine span ended %d times, want exactly 1", ends)
			}
		})
	}
}

// TestEngineProbeEndsOnDeadline asserts the same terminal guarantee on
// the budget-exhaustion path: an impossibly small TimeLimit on a hard
// instance must still end the engine span with a non-success outcome or a
// genuine (validated) solution.
func TestEngineProbeEndsOnDeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("deadline probe test runs every engine; skipped in -short")
	}
	p := contractProblem(12)
	const limit = 150 * time.Millisecond
	for _, name := range floorplanner.EngineNames() {
		t.Run(name, func(t *testing.T) {
			rec := floorplanner.NewRecorder()
			sol, err := floorplanner.Solve(context.Background(), p, floorplanner.Options{
				Engine:    name,
				TimeLimit: limit,
				Seed:      1,
				Probe:     rec,
			})
			end, ok := rec.EndOf(name)
			if !ok {
				t.Fatalf("engine span %q never ended on the deadline path; spans seen: %v", name, rec.SpanNames())
			}
			success := err == nil && sol != nil
			if got := string(end.Outcome); success != (got == "proven" || got == "solved") {
				t.Errorf("span outcome %q disagrees with solve result (sol=%v err=%v)", got, sol != nil, err)
			}
		})
	}
}
