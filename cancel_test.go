package floorplanner_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	floorplanner "repro"
)

// cancelProblem is large enough that both the exact search and the
// annealer run for many seconds if left alone: the tests cancel them
// mid-solve and assert a prompt return. The serving layer's deadline
// handling (internal/server) depends on this promptness.
func cancelProblem(t *testing.T) *floorplanner.Problem {
	t.Helper()
	dev := floorplanner.VirtexFX70T()
	n := 20
	regions := make([]floorplanner.Region, n)
	for i := range regions {
		regions[i] = floorplanner.Region{
			Name: fmt.Sprintf("r%02d", i),
			Req: floorplanner.Requirements{
				floorplanner.ClassCLB: 8 + i%5,
			},
		}
		if i%3 == 0 {
			regions[i].Req[floorplanner.ClassBRAM] = 1
		}
	}
	nets := make([]floorplanner.Net, 0, n-1)
	for i := 0; i+1 < n; i++ {
		nets = append(nets, floorplanner.Net{A: i, B: i + 1, Weight: 16})
	}
	return &floorplanner.Problem{
		Device:    dev,
		Regions:   regions,
		Nets:      nets,
		Objective: floorplanner.DefaultObjective(),
	}
}

func testCancelReturnsPromptly(t *testing.T, engine string) {
	p := cancelProblem(t)
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(100*time.Millisecond, cancel)
	defer timer.Stop()
	defer cancel()

	start := time.Now()
	sol, err := floorplanner.Solve(ctx, p, floorplanner.Options{
		Engine: engine,
		// No TimeLimit: only the canceled context can stop the solve.
		Seed: 1,
	})
	elapsed := time.Since(start)

	// Generous bound for loaded CI machines; unbounded solves of this
	// instance run for minutes.
	if elapsed > 5*time.Second {
		t.Fatalf("%s: Solve returned %s after cancellation, want prompt return", engine, elapsed)
	}
	// A solution found before the cancel is legal (unproven incumbent);
	// otherwise the engine must report a budget error, not hang or panic.
	if err == nil {
		if sol == nil {
			t.Fatalf("%s: nil solution with nil error", engine)
		}
		if err := sol.Validate(p); err != nil {
			t.Fatalf("%s: post-cancel incumbent invalid: %v", engine, err)
		}
	}
	t.Logf("%s: returned in %s (err=%v)", engine, elapsed, err)
}

func TestSolveCanceledContextExact(t *testing.T) {
	testCancelReturnsPromptly(t, "exact")
}

func TestSolveCanceledContextAnnealing(t *testing.T) {
	testCancelReturnsPromptly(t, "annealing")
}
