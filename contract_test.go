package floorplanner_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	floorplanner "repro"
	"repro/internal/sdr"
)

// contractProblem builds an instance chosen to be adversarial for every
// engine under a tiny budget: a long chain of heavily-weighted nets (the
// wire-length pass matters), mixed CLB/BRAM requirements (candidate
// filtering matters), and a relocation-constrained FC area (the paper's
// hard mode). At n=12 the MILP encoding has ~8500 constraints — far more
// than any engine can solve to optimality in 200ms, so a prompt return
// exercises the deadline path, not a fast solve.
func contractProblem(n int) *floorplanner.Problem {
	dev := floorplanner.VirtexFX70T()
	regions := make([]floorplanner.Region, n)
	for i := range regions {
		regions[i] = floorplanner.Region{
			Name: fmt.Sprintf("r%02d", i),
			Req:  floorplanner.Requirements{floorplanner.ClassCLB: 8 + i%5},
		}
		if i%3 == 0 {
			regions[i].Req[floorplanner.ClassBRAM] = 1
		}
	}
	nets := make([]floorplanner.Net, 0, n-1)
	for i := 0; i+1 < n; i++ {
		nets = append(nets, floorplanner.Net{A: i, B: i + 1, Weight: 16})
	}
	p := &floorplanner.Problem{
		Device:    dev,
		Regions:   regions,
		Nets:      nets,
		Objective: floorplanner.DefaultObjective(),
	}
	p.FCAreas = []floorplanner.FCRequest{{Region: 0, Mode: floorplanner.RelocConstraint}}
	return p
}

// TestEngineDeadlineContract asserts the deadline half of the engine
// contract (DESIGN.md "Engine contract"): every registered engine,
// given a TimeLimit far below what the instance needs, returns within
// TimeLimit plus a small epsilon. The epsilon (contractEpsilon, larger
// under the race detector) absorbs the granularity of the engines'
// deadline polls — e.g. one simplex pivot on an ~8500-constraint model.
func TestEngineDeadlineContract(t *testing.T) {
	if testing.Short() {
		t.Skip("deadline contract test runs every engine; skipped in -short")
	}
	p := contractProblem(12)
	const limit = 200 * time.Millisecond
	for _, name := range floorplanner.EngineNames() {
		t.Run(name, func(t *testing.T) {
			start := time.Now()
			sol, err := floorplanner.Solve(context.Background(), p, floorplanner.Options{
				Engine:    name,
				TimeLimit: limit,
				Seed:      1,
			})
			elapsed := time.Since(start)
			if elapsed > limit+contractEpsilon {
				t.Errorf("returned after %s, want ≤ %s", elapsed, limit+contractEpsilon)
			}
			switch {
			case err == nil:
				if sol == nil {
					t.Fatal("nil solution with nil error")
				}
				if verr := sol.Validate(p); verr != nil {
					t.Errorf("returned invalid solution: %v", verr)
				}
			case errors.Is(err, floorplanner.ErrNoSolution),
				errors.Is(err, floorplanner.ErrInfeasible):
				// A bounded solve may legitimately fail; it must say so
				// with the contract's sentinel errors.
			default:
				t.Errorf("budget exhaustion surfaced as unexpected error: %v", err)
			}
		})
	}
}

// TestEngineCancellationContract asserts the context half of the
// contract: a canceled context makes every engine return promptly even
// when its TimeLimit is generous.
func TestEngineCancellationContract(t *testing.T) {
	p := contractProblem(12)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range floorplanner.EngineNames() {
		t.Run(name, func(t *testing.T) {
			start := time.Now()
			_, err := floorplanner.Solve(ctx, p, floorplanner.Options{
				Engine:    name,
				TimeLimit: time.Hour,
				Seed:      1,
			})
			if elapsed := time.Since(start); elapsed > contractEpsilon {
				t.Errorf("returned after %s on a pre-canceled context, want ≤ %s", elapsed, contractEpsilon)
			}
			if err == nil {
				t.Error("nil error on a pre-canceled context")
			}
		})
	}
}

// sdrContractInstances are the paper's evaluation instances, used to pin
// the deadline contract on realistic model sizes (sdr2's MILP basis is
// ~9300×9300 — the size class where the PR5 benchmark caught milp-ho
// blowing an 18× hole through its 2s budget inside an un-deadlined dense
// refactorization). The synthetic contractProblem cannot reproduce that
// failure mode: it never grows a basis large enough for one factorization
// to dominate the budget.
func sdrContractInstances() []struct {
	name string
	p    *floorplanner.Problem
} {
	return []struct {
		name string
		p    *floorplanner.Problem
	}{
		{"sdr", sdr.Problem()},
		{"sdr2", sdr.SDR2()},
		{"sdr3", sdr.SDR3()},
	}
}

// TestMILPDeadlineContractSDRInstances asserts that both MILP engines
// honor TimeLimit+epsilon on every SDR instance. The budget is kept small
// so a single runaway stage (factorization, presolve, warm-start replay)
// is immediately visible as a contract breach rather than hiding inside a
// generous allowance.
func TestMILPDeadlineContractSDRInstances(t *testing.T) {
	if testing.Short() {
		t.Skip("solves the full SDR instances; skipped in -short")
	}
	const limit = 500 * time.Millisecond
	for _, engine := range []string{"milp-o", "milp-ho"} {
		for _, inst := range sdrContractInstances() {
			inst := inst
			t.Run(engine+"/"+inst.name, func(t *testing.T) {
				start := time.Now()
				sol, err := floorplanner.Solve(context.Background(), inst.p, floorplanner.Options{
					Engine:    engine,
					TimeLimit: limit,
					Seed:      1,
				})
				elapsed := time.Since(start)
				if elapsed > limit+contractEpsilon {
					t.Errorf("returned after %s, want ≤ %s", elapsed, limit+contractEpsilon)
				}
				switch {
				case err == nil:
					if verr := sol.Validate(inst.p); verr != nil {
						t.Errorf("returned invalid solution: %v", verr)
					}
				case errors.Is(err, floorplanner.ErrNoSolution),
					errors.Is(err, floorplanner.ErrInfeasible):
				default:
					t.Errorf("budget exhaustion surfaced as unexpected error: %v", err)
				}
			})
		}
	}
}

// TestMILPCancellationContractSDRInstances asserts the context half on
// the real instances: a pre-canceled context must stop the MILP path
// before any expensive stage (model build, presolve, root LP) runs.
func TestMILPCancellationContractSDRInstances(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, engine := range []string{"milp-o", "milp-ho"} {
		for _, inst := range sdrContractInstances() {
			inst := inst
			t.Run(engine+"/"+inst.name, func(t *testing.T) {
				start := time.Now()
				_, err := floorplanner.Solve(ctx, inst.p, floorplanner.Options{
					Engine:    engine,
					TimeLimit: time.Hour,
					Seed:      1,
				})
				if elapsed := time.Since(start); elapsed > contractEpsilon {
					t.Errorf("returned after %s on a pre-canceled context, want ≤ %s", elapsed, contractEpsilon)
				}
				if err == nil {
					t.Error("nil error on a pre-canceled context")
				}
			})
		}
	}
}

// TestPortfolioTracksFastestMember asserts the portfolio's wall-clock
// behavior on a real instance: the exact engine proves SDR's optimum in
// well under a second, so the portfolio must accept it and return far
// sooner than its 30s budget — its latency tracks the fastest proving
// member, not the sum (or max) of all members.
func TestPortfolioTracksFastestMember(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full portfolio race; skipped in -short")
	}
	p := sdr.Problem()
	const budget = 30 * time.Second
	start := time.Now()
	sol, err := floorplanner.Solve(context.Background(), p, floorplanner.Options{
		Engine:    "portfolio",
		TimeLimit: budget,
		Seed:      1,
	})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Proven {
		t.Error("portfolio did not surface the proven optimum on SDR")
	}
	if elapsed > budget/2 {
		t.Errorf("portfolio took %s of its %s budget; early acceptance of the proven winner should cut the race short", elapsed, budget)
	}
}
