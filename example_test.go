package floorplanner_test

import (
	"context"
	"fmt"
	"log"
	"time"

	floorplanner "repro"
	"repro/internal/device"
)

// ExampleSolve places two regions on a small columnar device and reserves
// a guaranteed relocation target for one of them.
func ExampleSolve() {
	cols := make([]device.TypeID, 12)
	for i := range cols {
		cols[i] = device.V5CLB
	}
	cols[3] = device.V5BRAM
	cols[8] = device.V5DSP
	dev, err := floorplanner.NewColumnarDevice("example", cols, 4, device.V5Types(), nil)
	if err != nil {
		log.Fatal(err)
	}
	p := &floorplanner.Problem{
		Device: dev,
		Regions: []floorplanner.Region{
			{Name: "dsp", Req: floorplanner.Requirements{floorplanner.ClassCLB: 2, floorplanner.ClassDSP: 1}},
			{Name: "mem", Req: floorplanner.Requirements{floorplanner.ClassCLB: 2, floorplanner.ClassBRAM: 1}},
		},
		FCAreas:   []floorplanner.FCRequest{{Region: 0, Mode: floorplanner.RelocConstraint}},
		Objective: floorplanner.DefaultObjective(),
	}
	sol, err := floorplanner.Solve(context.Background(), p, floorplanner.Options{
		TimeLimit: 30 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	m := sol.Metrics(p)
	fmt.Printf("placed %d regions, %d relocation target(s), %d wasted frames\n",
		len(sol.Regions), m.PlacedFC, m.WastedFrames)
	// Output:
	// placed 2 regions, 1 relocation target(s), 0 wasted frames
}

// ExampleProblem_Validate shows the static checks a problem goes through.
func ExampleProblem_Validate() {
	p := &floorplanner.Problem{
		Device: floorplanner.VirtexFX70T(),
		Regions: []floorplanner.Region{
			{Name: "task", Req: floorplanner.Requirements{floorplanner.ClassCLB: 4}},
		},
		FCAreas: []floorplanner.FCRequest{{Region: 7}},
	}
	fmt.Println(p.Validate())
	// Output:
	// core: free-compatible request 0 references unknown region 7
}

// ExampleRenderASCII renders the device fabric without a solution.
func ExampleRenderASCII() {
	cols := []device.TypeID{device.V5CLB, device.V5BRAM, device.V5CLB, device.V5DSP}
	dev, err := floorplanner.NewColumnarDevice("tiny", cols, 2, device.V5Types(), nil)
	if err != nil {
		log.Fatal(err)
	}
	p := &floorplanner.Problem{
		Device:  dev,
		Regions: []floorplanner.Region{{Name: "r", Req: floorplanner.Requirements{floorplanner.ClassCLB: 1}}},
	}
	fmt.Print(floorplanner.RenderASCII(p, nil))
	// Output:
	// tiny (4x2 tiles)
	// .:.|
	// .:.|
}
