package floorplanner_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	floorplanner "repro"
)

// FuzzProblemDecode hardens the wire-format problem decoder — the same
// path POST /v1/solve bodies and -problem files take. Decoding plus
// Validate must never panic on arbitrary bytes, and any problem that
// validates must re-marshal cleanly.
func FuzzProblemDecode(f *testing.F) {
	golden, err := os.ReadFile(filepath.Join("testdata", "problem.golden.json"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(golden)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"regions":[{"name":"a","req":{"CLB":1}}]}`))
	f.Add([]byte(`{"nets":[{"a":0,"b":1,"weight":1e309}]}`))
	f.Add([]byte(`{"device":{"w":-1,"h":99999999}}`))
	f.Add([]byte(`null`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var p floorplanner.Problem
		if err := json.Unmarshal(data, &p); err != nil {
			return // rejected by the decoder: fine
		}
		// Validate is the hardening boundary: it may reject, never panic.
		if err := p.Validate(); err != nil {
			return
		}
		// Valid problems must survive a marshal round trip.
		if _, err := json.Marshal(&p); err != nil {
			t.Fatalf("valid problem does not re-marshal: %v", err)
		}
	})
}
