//go:build race

package floorplanner_test

import "time"

// contractEpsilon under the race detector: instrumentation slows every
// engine severalfold, so the contract keeps the same shape (prompt return
// after TimeLimit) with a proportionally larger allowance.
const contractEpsilon = 2 * time.Second
