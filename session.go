package floorplanner

import (
	"repro/internal/session"
)

// Online-placement surface: the library facade over internal/session.
// Where Solve answers one offline instance, a Session is a stateful
// manager over a live device — arrivals placed best-fit into maximal
// empty rectangles (with a budgeted floorplanner fallback), departures
// freeing space, and threshold-triggered no-break defragmentation whose
// every move flows through the bitstream config-memory model.
type (
	// Session is a stateful online-placement manager; see session.Manager.
	Session = session.Manager
	// SessionConfig parameterizes NewSession; see session.Config.
	SessionConfig = session.Config
	// SessionEvent is one arrival or departure.
	SessionEvent = session.Event
	// SessionEventKind discriminates SessionEvent.
	SessionEventKind = session.EventKind
	// SessionEventResult reports what one event did.
	SessionEventResult = session.EventResult
	// SessionSnapshot is a point-in-time view of a Session.
	SessionSnapshot = session.Snapshot
	// SessionStats are a Session's accumulated counters.
	SessionStats = session.Stats
	// DefragReport describes one defragmentation cycle.
	DefragReport = session.DefragReport
	// WorkloadConfig parameterizes GenerateWorkload.
	WorkloadConfig = session.WorkloadConfig
)

// Session event kinds.
const (
	// SessionArrival asks the session to place and configure a module.
	SessionArrival = session.Arrival
	// SessionDeparture retires a live module and frees its area.
	SessionDeparture = session.Departure
)

// NewSession builds an empty online-placement session over cfg.Device.
// Set cfg.Engine (e.g. via NewEngine) to enable the floorplanner
// fallback for arrivals greedy placement cannot fit.
func NewSession(cfg SessionConfig) (*Session, error) { return session.New(cfg) }

// GenerateWorkload produces a deterministic seeded arrival/departure
// stream for driving a Session (the same generator cmd/floorsim uses).
func GenerateWorkload(cfg WorkloadConfig) []SessionEvent { return session.GenerateWorkload(cfg) }
