package floorplanner_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	floorplanner "repro"
	"repro/internal/device"
)

// The JSON forms of Problem and Solution are the service wire format
// (cmd/floorplanner files, POST /v1/solve bodies and replies). These
// golden-file tests lock the encoding: an unintended field rename or
// representation change fails against the committed files.
//
// Regenerate after an *intended* format change with:
//
//	go test -run TestGolden -update-golden .

var updateGolden = flag.Bool("update-golden", false, "rewrite golden wire-format files")

// goldenProblem exercises every Problem field: device, regions, nets,
// constraint- and metric-mode FC requests, and a non-default objective.
func goldenProblem(t *testing.T) *floorplanner.Problem {
	t.Helper()
	cols := make([]device.TypeID, 12)
	for i := range cols {
		cols[i] = device.V5CLB
	}
	cols[3] = device.V5BRAM
	cols[8] = device.V5DSP
	dev, err := floorplanner.NewColumnarDevice("golden", cols, 4, device.V5Types(),
		[]floorplanner.Rect{{X: 6, Y: 0, W: 1, H: 1}})
	if err != nil {
		t.Fatal(err)
	}
	return &floorplanner.Problem{
		Device: dev,
		Regions: []floorplanner.Region{
			{Name: "filter", Req: floorplanner.Requirements{floorplanner.ClassCLB: 4, floorplanner.ClassDSP: 1}},
			{Name: "decoder", Req: floorplanner.Requirements{floorplanner.ClassCLB: 3, floorplanner.ClassBRAM: 1}},
		},
		Nets: []floorplanner.Net{{A: 0, B: 1, Weight: 64}},
		FCAreas: []floorplanner.FCRequest{
			{Region: 0, Mode: floorplanner.RelocConstraint},
			{Region: 1, Mode: floorplanner.RelocMetric, Weight: 2.5},
		},
		Objective: floorplanner.Objective{WireLength: 1, Resource: 2, Relocation: 4},
	}
}

// goldenSolution is a hand-built solution with every field populated.
func goldenSolution() *floorplanner.Solution {
	return &floorplanner.Solution{
		Regions: []floorplanner.Rect{
			{X: 7, Y: 0, W: 3, H: 2},
			{X: 2, Y: 0, W: 3, H: 2},
		},
		FC: []floorplanner.FCPlacement{
			{Request: 0, Placed: true, Rect: floorplanner.Rect{X: 7, Y: 2, W: 3, H: 2}},
			{Request: 1, Placed: false},
		},
		Engine:  "exact",
		Proven:  true,
		Elapsed: 1500 * time.Millisecond,
		Nodes:   4242,
	}
}

func goldenPath(name string) string { return filepath.Join("testdata", name) }

func checkGolden(t *testing.T, name string, v any) []byte {
	t.Helper()
	got, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := goldenPath(name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to regenerate)", err)
	}
	if string(got) != string(want) {
		t.Errorf("%s: encoding drifted from golden file\ngot:\n%s\nwant:\n%s\n(run with -update-golden if the change is intended)", name, got, want)
	}
	return want
}

func TestGoldenProblemRoundTrip(t *testing.T) {
	p := goldenProblem(t)
	golden := checkGolden(t, "problem.golden.json", p)

	var decoded floorplanner.Problem
	if err := json.Unmarshal(golden, &decoded); err != nil {
		t.Fatal(err)
	}
	if err := decoded.Validate(); err != nil {
		t.Fatalf("decoded problem invalid: %v", err)
	}
	if !reflect.DeepEqual(p, &decoded) {
		t.Fatalf("round-trip lost information:\nencoded: %+v\ndecoded: %+v", p, &decoded)
	}

	// Re-encoding the decoded problem must be byte-identical: the format
	// is canonical, not merely losslessly invertible.
	reencoded, err := json.MarshalIndent(&decoded, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(append(reencoded, '\n')) != string(golden) {
		t.Fatal("re-encoding the decoded problem changed the bytes")
	}
}

func TestGoldenSolutionRoundTrip(t *testing.T) {
	s := goldenSolution()
	golden := checkGolden(t, "solution.golden.json", s)

	var decoded floorplanner.Solution
	if err := json.Unmarshal(golden, &decoded); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, &decoded) {
		t.Fatalf("round-trip lost information:\nencoded: %+v\ndecoded: %+v", s, &decoded)
	}
	if err := decoded.Validate(goldenProblem(t)); err != nil {
		t.Fatalf("decoded golden solution does not validate against the golden problem: %v", err)
	}
}
