package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/benchfmt"
)

// TestRunBenchSmoke runs a small real benchmark — one SDR instance, two
// engines, short budget — and checks the report validates, covers the
// full matrix, and carries sane aggregates.
func TestRunBenchSmoke(t *testing.T) {
	report, err := runBench(context.Background(), benchConfig{
		Instances: []string{"sdr"},
		Engines:   []string{"exact", "constructive"},
		Budget:    5 * time.Second,
		Repeats:   2,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := report.Validate(); err != nil {
		t.Fatalf("report does not validate: %v", err)
	}
	if len(report.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(report.Results))
	}
	for _, res := range report.Results {
		if res.Runs != 2 {
			t.Errorf("%s×%s ran %d repeats, want 2", res.Instance, res.Engine, res.Runs)
		}
		if !res.Feasible {
			t.Errorf("%s×%s did not solve the SDR instance", res.Instance, res.Engine)
		}
	}
	// The exact engine proves optimality on SDR within the budget.
	if res := report.Results[0]; res.Engine != "exact" || !res.Optimal || res.Outcome != "proven" {
		t.Errorf("exact cell = %+v, want an optimality proof", res)
	}
	// The provenance block travels with the report.
	if report.Meta == nil || report.Meta.NumCPU < 1 || report.Meta.GOMAXPROCS < 1 || report.Meta.GoVersion == "" {
		t.Errorf("run meta incomplete: %+v", report.Meta)
	}
	// Serialization round-trips through the validator.
	var buf bytes.Buffer
	if err := report.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := benchfmt.Read(&buf); err != nil {
		t.Fatal(err)
	}
}

// writeReport writes r to dir/name for the compare-gate tests.
func writeReport(t *testing.T, dir, name string, r *benchfmt.Report) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunCompareGate drives the CLI gate over fixture reports: a clean
// head passes, a head with one deliberately slowed engine fails and the
// JSON diff names the slowed cell.
func TestRunCompareGate(t *testing.T) {
	dir := t.TempDir()
	obj := 17.0
	base := &benchfmt.Report{
		SchemaVersion: benchfmt.SchemaVersion,
		BudgetMS:      2000,
		Repeats:       1,
		Results: []benchfmt.Result{
			{Instance: "sdr", Engine: "exact", Outcome: "proven", Feasible: true, Optimal: true,
				BestObjective: &obj, Runs: 1, WallMSP50: 200, WallMSP95: 220},
			{Instance: "sdr", Engine: "constructive", Outcome: "solved", Feasible: true,
				BestObjective: &obj, Runs: 1, WallMSP50: 5, WallMSP95: 6},
		},
	}
	oldPath := writeReport(t, dir, "old.json", base)

	// Clean head: identical numbers pass the gate.
	if err := runCompare(oldPath, writeReport(t, dir, "same.json", base), compareOpts{}); err != nil {
		t.Fatalf("self-compare failed the gate: %v", err)
	}

	// Slowed head: the exact engine got 4x slower (as if someone dropped
	// its presolve). The gate must fail and the diff must say which cell.
	slowed := *base
	slowed.Results = append([]benchfmt.Result(nil), base.Results...)
	slowed.Results[0].WallMSP50, slowed.Results[0].WallMSP95 = 800, 900
	newPath := writeReport(t, dir, "new.json", &slowed)
	diffPath := filepath.Join(dir, "diff.json")
	err := runCompare(oldPath, newPath, compareOpts{DiffOut: diffPath})
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("slowed engine passed the gate: %v", err)
	}
	raw, rerr := os.ReadFile(diffPath)
	if rerr != nil {
		t.Fatal(rerr)
	}
	var diff benchfmt.Diff
	if err := json.Unmarshal(raw, &diff); err != nil {
		t.Fatal(err)
	}
	if !diff.Regressed() || len(diff.Regressions) != 1 || !strings.Contains(diff.Regressions[0], "sdr×exact") {
		t.Fatalf("diff does not pin the slowed cell: %+v", diff.Regressions)
	}

	// Strict budget in compare mode: a head report carrying any budget
	// warning fails even when it matches its own baseline.
	blown := *base
	blown.Results = append([]benchfmt.Result(nil), base.Results...)
	blown.Results[0].WallMSP50, blown.Results[0].WallMSP95 = 2400, 2500
	blownPath := writeReport(t, dir, "blown.json", &blown)
	err = runCompare(blownPath, blownPath, compareOpts{StrictBudget: true})
	if err == nil || !strings.Contains(err.Error(), "strict budget") {
		t.Fatalf("strict budget did not fail on a warned report: %v", err)
	}

	// Missing positional argument is a usage error, not a pass.
	if err := runCompare(oldPath, "", compareOpts{}); err == nil {
		t.Fatal("compare without a new report passed")
	}
}

func TestRunBenchRejectsBadConfig(t *testing.T) {
	if _, err := runBench(context.Background(), benchConfig{
		Instances: []string{"sdr"}, Engines: []string{"exact"}, Repeats: 1,
	}); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := runBench(context.Background(), benchConfig{
		Instances: []string{"atlantis"}, Engines: []string{"exact"},
		Budget: time.Second, Repeats: 1,
	}); err == nil {
		t.Error("unknown instance accepted")
	}
	if _, err := runBench(context.Background(), benchConfig{
		Instances: []string{"sdr"}, Engines: []string{"warp"},
		Budget: time.Second, Repeats: 1,
	}); err == nil {
		t.Error("unknown engine accepted (should surface as an engine construction error)")
	}
}

func TestPercentileNearestRank(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := percentile(sorted, 0.50); p != 5 {
		t.Errorf("p50 = %v, want 5", p)
	}
	if p := percentile(sorted, 0.95); p != 10 {
		t.Errorf("p95 = %v, want 10", p)
	}
	if p := percentile([]float64{7}, 0.95); p != 7 {
		t.Errorf("single-sample p95 = %v, want 7", p)
	}
	if p := percentile(nil, 0.5); p != 0 {
		t.Errorf("empty p50 = %v, want 0", p)
	}
}
