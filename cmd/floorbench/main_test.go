package main

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/benchfmt"
)

// TestRunBenchSmoke runs a small real benchmark — one SDR instance, two
// engines, short budget — and checks the report validates, covers the
// full matrix, and carries sane aggregates.
func TestRunBenchSmoke(t *testing.T) {
	report, err := runBench(context.Background(), benchConfig{
		Instances: []string{"sdr"},
		Engines:   []string{"exact", "constructive"},
		Budget:    5 * time.Second,
		Repeats:   2,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := report.Validate(); err != nil {
		t.Fatalf("report does not validate: %v", err)
	}
	if len(report.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(report.Results))
	}
	for _, res := range report.Results {
		if res.Runs != 2 {
			t.Errorf("%s×%s ran %d repeats, want 2", res.Instance, res.Engine, res.Runs)
		}
		if !res.Feasible {
			t.Errorf("%s×%s did not solve the SDR instance", res.Instance, res.Engine)
		}
	}
	// The exact engine proves optimality on SDR within the budget.
	if res := report.Results[0]; res.Engine != "exact" || !res.Optimal || res.Outcome != "proven" {
		t.Errorf("exact cell = %+v, want an optimality proof", res)
	}
	// Serialization round-trips through the validator.
	var buf bytes.Buffer
	if err := report.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := benchfmt.Read(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestRunBenchRejectsBadConfig(t *testing.T) {
	if _, err := runBench(context.Background(), benchConfig{
		Instances: []string{"sdr"}, Engines: []string{"exact"}, Repeats: 1,
	}); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := runBench(context.Background(), benchConfig{
		Instances: []string{"atlantis"}, Engines: []string{"exact"},
		Budget: time.Second, Repeats: 1,
	}); err == nil {
		t.Error("unknown instance accepted")
	}
	if _, err := runBench(context.Background(), benchConfig{
		Instances: []string{"sdr"}, Engines: []string{"warp"},
		Budget: time.Second, Repeats: 1,
	}); err == nil {
		t.Error("unknown engine accepted (should surface as an engine construction error)")
	}
}

func TestPercentileNearestRank(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := percentile(sorted, 0.50); p != 5 {
		t.Errorf("p50 = %v, want 5", p)
	}
	if p := percentile(sorted, 0.95); p != 10 {
		t.Errorf("p95 = %v, want 10", p)
	}
	if p := percentile([]float64{7}, 0.95); p != 7 {
		t.Errorf("single-sample p95 = %v, want 7", p)
	}
	if p := percentile(nil, 0.5); p != 0 {
		t.Errorf("empty p50 = %v, want 0", p)
	}
}
