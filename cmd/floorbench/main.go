// Command floorbench is the continuous benchmark harness: it runs the
// paper's SDR case-study instances across a configurable engine set
// under a fixed per-solve budget, repeats each cell, and emits a
// schema-versioned BENCH.json (internal/benchfmt) — per instance×engine,
// wall-clock p50/p95, the best objective, optimality/feasibility flags
// and the incumbent curve. Committed BENCH.json files seed the repo's
// performance trajectory; CI runs a short smoke and validates the JSON.
//
// Usage:
//
//	floorbench -out BENCH.json                             # full default run
//	floorbench -instances sdr,sdr2 -engines exact,milp-ho -budget 2s -repeats 3
//	floorbench -validate BENCH.json                        # validate an existing report
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	floorplanner "repro"
	"repro/internal/benchfmt"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sdr"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "floorbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		instances = flag.String("instances", "sdr,sdr2,sdr3", "comma-separated instances: sdr, sdr2, sdr3")
		engines   = flag.String("engines", "exact,milp-ho,constructive", "comma-separated engines to benchmark")
		budget    = flag.Duration("budget", 10*time.Second, "per-solve time budget")
		repeats   = flag.Int("repeats", 3, "solves per instance×engine cell")
		seed      = flag.Int64("seed", 1, "base seed for randomized engines (repeat i uses seed+i)")
		out       = flag.String("out", "BENCH.json", "output report path")
		validate  = flag.String("validate", "", "validate an existing report at this path and exit")
		strict    = flag.Bool("strict-budget", false, "exit nonzero when any cell's median wall-clock exceeds budget plus the contract epsilon")
	)
	flag.Parse()

	if *validate != "" {
		f, err := os.Open(*validate)
		if err != nil {
			return err
		}
		defer f.Close()
		report, err := benchfmt.Read(f)
		if err != nil {
			return err
		}
		fmt.Printf("%s: valid (schema %d, %d results)\n", *validate, report.SchemaVersion, len(report.Results))
		return nil
	}

	cfg := benchConfig{
		Instances: splitList(*instances),
		Engines:   splitList(*engines),
		Budget:    *budget,
		Repeats:   *repeats,
		Seed:      *seed,
		Progress: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	report, err := runBench(context.Background(), cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	werr := report.Write(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}
	for _, warn := range report.BudgetWarnings {
		fmt.Fprintln(os.Stderr, "floorbench: warning:", warn)
	}
	fmt.Println("wrote", *out)
	if *strict && len(report.BudgetWarnings) > 0 {
		// The report is still written — the artifact documents the breach —
		// but CI (and anyone passing -strict-budget) sees a hard failure
		// instead of a warning that scrolls by.
		return fmt.Errorf("strict budget: %d cell(s) broke the deadline contract", len(report.BudgetWarnings))
	}
	return nil
}

// benchConfig parameterizes one harness run.
type benchConfig struct {
	Instances []string
	Engines   []string
	Budget    time.Duration
	Repeats   int
	Seed      int64
	// Progress, when non-nil, receives one line per finished cell.
	Progress func(format string, args ...any)
}

// runBench executes the benchmark matrix and assembles the report.
func runBench(ctx context.Context, cfg benchConfig) (*benchfmt.Report, error) {
	if cfg.Repeats < 1 {
		cfg.Repeats = 1
	}
	if cfg.Budget <= 0 {
		return nil, fmt.Errorf("budget must be positive")
	}
	if len(cfg.Instances) == 0 || len(cfg.Engines) == 0 {
		return nil, fmt.Errorf("need at least one instance and one engine")
	}
	// Fail fast on engine typos instead of producing an all-"error" report.
	for _, engine := range cfg.Engines {
		if _, err := floorplanner.NewEngine(engine); err != nil {
			return nil, err
		}
	}
	report := &benchfmt.Report{
		SchemaVersion: benchfmt.SchemaVersion,
		GoVersion:     runtime.Version(),
		BudgetMS:      durMS(cfg.Budget),
		Repeats:       cfg.Repeats,
		Seed:          cfg.Seed,
	}
	if host, err := os.Hostname(); err == nil {
		report.Host = host
	}
	for _, instance := range cfg.Instances {
		p, err := loadInstance(instance)
		if err != nil {
			return nil, err
		}
		for _, engine := range cfg.Engines {
			res, err := runCell(ctx, instance, engine, p, cfg)
			if err != nil {
				return nil, err
			}
			report.Results = append(report.Results, *res)
			if cfg.Progress != nil {
				cfg.Progress("%-6s %-14s %-12s p50=%.0fms p95=%.0fms",
					instance, engine, res.Outcome, res.WallMSP50, res.WallMSP95)
			}
		}
	}
	report.CreatedAt = time.Now().UTC()
	return report, nil
}

// runCell benchmarks one instance×engine cell: Repeats budgeted solves,
// aggregated into percentiles, flags and the best run's incumbent curve.
func runCell(ctx context.Context, instance, engine string, p *core.Problem, cfg benchConfig) (*benchfmt.Result, error) {
	res := &benchfmt.Result{Instance: instance, Engine: engine}
	walls := make([]float64, 0, cfg.Repeats)
	var bestCurve []benchfmt.CurvePoint
	for i := 0; i < cfg.Repeats; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rec := obs.NewRecorder()
		started := time.Now()
		sol, err := floorplanner.Solve(ctx, p, floorplanner.Options{
			Engine:    engine,
			TimeLimit: cfg.Budget,
			Seed:      cfg.Seed + int64(i),
			Probe:     rec,
		})
		walls = append(walls, durMS(time.Since(started)))
		res.Runs++

		outcome := benchOutcome(sol, err)
		if outcomeRank(outcome) > outcomeRank(res.Outcome) {
			res.Outcome = outcome
		}
		if outcome == "error" && res.Err == "" && err != nil {
			res.Err = err.Error()
		}
		if sol != nil && err == nil {
			res.Feasible = true
			if sol.Proven {
				res.Optimal = true
			}
			obj := sol.Objective(p)
			if res.BestObjective == nil || obj < *res.BestObjective {
				res.BestObjective = &obj
				bestCurve = curveFrom(rec, engine)
			}
		}
	}
	sort.Float64s(walls)
	res.WallMSP50 = percentile(walls, 0.50)
	res.WallMSP95 = percentile(walls, 0.95)
	res.IncumbentCurve = bestCurve
	return res, nil
}

// benchOutcome maps a solve result onto the report's outcome set
// (panics and invalid solutions surface as "error" with Err set).
func benchOutcome(sol *core.Solution, err error) string {
	switch o := string(core.ObsOutcome(sol, err)); o {
	case "proven", "solved", "infeasible", "no_solution":
		return o
	default:
		return "error"
	}
}

// outcomeRank orders outcomes by informativeness, so a cell's aggregate
// outcome is its best repeat: a proof beats a solution beats an
// infeasibility verdict beats an exhausted budget beats a failure.
func outcomeRank(o string) int {
	switch o {
	case "proven":
		return 5
	case "solved":
		return 4
	case "infeasible":
		return 3
	case "no_solution":
		return 2
	case "error":
		return 1
	default:
		return 0
	}
}

// curveFrom extracts the engine span's incumbent trajectory as a
// strictly-improving curve (equal-objective points are dropped, matching
// the benchfmt invariant).
func curveFrom(rec *obs.Recorder, engine string) []benchfmt.CurvePoint {
	var curve []benchfmt.CurvePoint
	for _, pt := range rec.Incumbents(engine) {
		if len(curve) > 0 && pt.Objective >= curve[len(curve)-1].Objective {
			continue
		}
		curve = append(curve, benchfmt.CurvePoint{AtMS: durMS(pt.At), Objective: pt.Objective})
	}
	return curve
}

// percentile is the nearest-rank percentile of sorted values.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// loadInstance resolves a named case-study instance.
func loadInstance(name string) (*core.Problem, error) {
	switch strings.ToLower(name) {
	case "sdr":
		return sdr.Problem(), nil
	case "sdr2":
		return sdr.SDR2(), nil
	case "sdr3":
		return sdr.SDR3(), nil
	default:
		return nil, fmt.Errorf("unknown instance %q (want sdr, sdr2 or sdr3)", name)
	}
}

// splitList parses a comma-separated flag value, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func durMS(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}
