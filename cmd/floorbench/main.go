// Command floorbench is the continuous benchmark harness: it runs the
// paper's SDR case-study instances across a configurable engine set
// under a fixed per-solve budget, repeats each cell, and emits a
// schema-versioned BENCH.json (internal/benchfmt) — per instance×engine,
// wall-clock p50/p95, the best objective, optimality/feasibility flags
// and the incumbent curve. Committed BENCH.json files seed the repo's
// performance trajectory; CI runs a short smoke and validates the JSON.
//
// Usage:
//
//	floorbench -out BENCH.json                             # full default run
//	floorbench -instances sdr,sdr2 -engines exact,milp-ho -budget 2s -repeats 3
//	floorbench -validate BENCH.json                        # validate an existing report
//	floorbench -compare OLD.json NEW.json                  # regression-gate NEW against OLD
//
// Compare mode is the CI regression gate: it diffs NEW.json against the
// OLD.json baseline cell by cell and exits nonzero when a cell's median
// wall-clock slows past BOTH noise margins (-noise-pct and
// -noise-floor), when an outcome gets worse (lost proof, lost
// feasibility, new failure), when a cell starts violating the budget
// contract, or when a baseline cell disappears. -diff-out writes the
// machine-readable diff next to the human table.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	floorplanner "repro"
	"repro/internal/benchfmt"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sdr"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "floorbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		instances = flag.String("instances", "sdr,sdr2,sdr3", "comma-separated instances: sdr, sdr2, sdr3")
		engines   = flag.String("engines", "exact,milp-ho,constructive", "comma-separated engines to benchmark")
		budget    = flag.Duration("budget", 10*time.Second, "per-solve time budget")
		repeats   = flag.Int("repeats", 3, "solves per instance×engine cell")
		seed      = flag.Int64("seed", 1, "base seed for randomized engines (repeat i uses seed+i)")
		out       = flag.String("out", "BENCH.json", "output report path")
		validate  = flag.String("validate", "", "validate an existing report at this path and exit")
		strict    = flag.Bool("strict-budget", false, "exit nonzero when any cell's median wall-clock exceeds budget plus the contract epsilon (in -compare mode: when the new report has any budget warning)")
		compare   = flag.String("compare", "", "regression-gate mode: diff the report named by the positional argument against this baseline and exit")
		noisePct  = flag.Float64("noise-pct", benchfmt.DefaultNoisePct, "compare: relative p50 slowdown (percent) tolerated as noise")
		noiseFlr  = flag.Float64("noise-floor", benchfmt.DefaultNoiseFloorMS, "compare: absolute p50 slowdown (milliseconds) tolerated as noise")
		diffOut   = flag.String("diff-out", "", "compare: also write the diff as JSON to this path")
	)
	flag.Parse()

	if *compare != "" {
		return runCompare(*compare, flag.Arg(0), compareOpts{
			NoisePct:     *noisePct,
			NoiseFloorMS: *noiseFlr,
			DiffOut:      *diffOut,
			StrictBudget: *strict,
		})
	}

	if *validate != "" {
		f, err := os.Open(*validate)
		if err != nil {
			return err
		}
		defer f.Close()
		report, err := benchfmt.Read(f)
		if err != nil {
			return err
		}
		fmt.Printf("%s: valid (schema %d, %d results)\n", *validate, report.SchemaVersion, len(report.Results))
		return nil
	}

	cfg := benchConfig{
		Instances: splitList(*instances),
		Engines:   splitList(*engines),
		Budget:    *budget,
		Repeats:   *repeats,
		Seed:      *seed,
		Progress: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	report, err := runBench(context.Background(), cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	werr := report.Write(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}
	for _, warn := range report.BudgetWarnings {
		fmt.Fprintln(os.Stderr, "floorbench: warning:", warn)
	}
	fmt.Println("wrote", *out)
	if *strict && len(report.BudgetWarnings) > 0 {
		// The report is still written — the artifact documents the breach —
		// but CI (and anyone passing -strict-budget) sees a hard failure
		// instead of a warning that scrolls by.
		return fmt.Errorf("strict budget: %d cell(s) broke the deadline contract", len(report.BudgetWarnings))
	}
	return nil
}

// compareOpts parameterizes one regression-gate run.
type compareOpts struct {
	NoisePct     float64
	NoiseFloorMS float64
	DiffOut      string
	StrictBudget bool
}

// runCompare is the regression gate: read both reports, diff, render,
// fail on regressions.
func runCompare(oldPath, newPath string, opts compareOpts) error {
	if newPath == "" {
		return fmt.Errorf("compare mode needs the new report as a positional argument: floorbench -compare OLD.json NEW.json")
	}
	base, err := readReport(oldPath)
	if err != nil {
		return err
	}
	head, err := readReport(newPath)
	if err != nil {
		return err
	}
	diff := benchfmt.Compare(base, head, benchfmt.CompareOpts{
		NoisePct:     opts.NoisePct,
		NoiseFloorMS: opts.NoiseFloorMS,
	})
	if err := diff.WriteText(os.Stdout); err != nil {
		return err
	}
	if opts.DiffOut != "" {
		f, err := os.Create(opts.DiffOut)
		if err != nil {
			return err
		}
		werr := diff.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
	}
	if opts.StrictBudget && len(head.BudgetWarnings) > 0 {
		return fmt.Errorf("strict budget: new report carries %d budget warning(s)", len(head.BudgetWarnings))
	}
	if diff.Regressed() {
		return fmt.Errorf("%d regression(s) against %s", len(diff.Regressions), oldPath)
	}
	return nil
}

// readReport opens and schema-validates one report.
func readReport(path string) (*benchfmt.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := benchfmt.Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// benchConfig parameterizes one harness run.
type benchConfig struct {
	Instances []string
	Engines   []string
	Budget    time.Duration
	Repeats   int
	Seed      int64
	// Progress, when non-nil, receives one line per finished cell.
	Progress func(format string, args ...any)
}

// runBench executes the benchmark matrix and assembles the report.
func runBench(ctx context.Context, cfg benchConfig) (*benchfmt.Report, error) {
	if cfg.Repeats < 1 {
		cfg.Repeats = 1
	}
	if cfg.Budget <= 0 {
		return nil, fmt.Errorf("budget must be positive")
	}
	if len(cfg.Instances) == 0 || len(cfg.Engines) == 0 {
		return nil, fmt.Errorf("need at least one instance and one engine")
	}
	// Fail fast on engine typos instead of producing an all-"error" report.
	for _, engine := range cfg.Engines {
		if _, err := floorplanner.NewEngine(engine); err != nil {
			return nil, err
		}
	}
	report := &benchfmt.Report{
		SchemaVersion: benchfmt.SchemaVersion,
		GoVersion:     runtime.Version(),
		BudgetMS:      durMS(cfg.Budget),
		Repeats:       cfg.Repeats,
		Seed:          cfg.Seed,
		Meta:          runMeta(),
	}
	if host, err := os.Hostname(); err == nil {
		report.Host = host
	}
	for _, instance := range cfg.Instances {
		p, err := loadInstance(instance)
		if err != nil {
			return nil, err
		}
		for _, engine := range cfg.Engines {
			res, err := runCell(ctx, instance, engine, p, cfg)
			if err != nil {
				return nil, err
			}
			report.Results = append(report.Results, *res)
			if cfg.Progress != nil {
				cfg.Progress("%-6s %-14s %-12s p50=%.0fms p95=%.0fms",
					instance, engine, res.Outcome, res.WallMSP50, res.WallMSP95)
			}
		}
	}
	report.CreatedAt = time.Now().UTC()
	return report, nil
}

// runCell benchmarks one instance×engine cell: Repeats budgeted solves,
// aggregated into percentiles, flags and the best run's incumbent curve.
func runCell(ctx context.Context, instance, engine string, p *core.Problem, cfg benchConfig) (*benchfmt.Result, error) {
	res := &benchfmt.Result{Instance: instance, Engine: engine}
	walls := make([]float64, 0, cfg.Repeats)
	var bestCurve []benchfmt.CurvePoint
	for i := 0; i < cfg.Repeats; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rec := obs.NewRecorder()
		started := time.Now()
		sol, err := floorplanner.Solve(ctx, p, floorplanner.Options{
			Engine:    engine,
			TimeLimit: cfg.Budget,
			Seed:      cfg.Seed + int64(i),
			Probe:     rec,
		})
		walls = append(walls, durMS(time.Since(started)))
		res.Runs++

		outcome := benchOutcome(sol, err)
		if benchfmt.OutcomeRank(outcome) > benchfmt.OutcomeRank(res.Outcome) {
			res.Outcome = outcome
		}
		if outcome == "error" && res.Err == "" && err != nil {
			res.Err = err.Error()
		}
		if sol != nil && err == nil {
			res.Feasible = true
			if sol.Proven {
				res.Optimal = true
			}
			obj := sol.Objective(p)
			if res.BestObjective == nil || obj < *res.BestObjective {
				res.BestObjective = &obj
				bestCurve = curveFrom(rec, engine)
			}
		}
	}
	sort.Float64s(walls)
	res.WallMSP50 = percentile(walls, 0.50)
	res.WallMSP95 = percentile(walls, 0.95)
	res.IncumbentCurve = bestCurve
	return res, nil
}

// benchOutcome maps a solve result onto the report's outcome set
// (panics and invalid solutions surface as "error" with Err set).
func benchOutcome(sol *core.Solution, err error) string {
	switch o := string(core.ObsOutcome(sol, err)); o {
	case "proven", "solved", "infeasible", "no_solution":
		return o
	default:
		return "error"
	}
}

// runMeta captures the run's provenance from the embedded build info
// and the live runtime (nil only if even runtime introspection fails,
// which it cannot).
func runMeta() *benchfmt.Meta {
	m := &benchfmt.Meta{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				m.GitCommit = s.Value
			case "vcs.modified":
				m.GitDirty = s.Value == "true"
			}
		}
	}
	return m
}

// curveFrom extracts the engine span's incumbent trajectory as a
// strictly-improving curve (equal-objective points are dropped, matching
// the benchfmt invariant).
func curveFrom(rec *obs.Recorder, engine string) []benchfmt.CurvePoint {
	var curve []benchfmt.CurvePoint
	for _, pt := range rec.Incumbents(engine) {
		if len(curve) > 0 && pt.Objective >= curve[len(curve)-1].Objective {
			continue
		}
		curve = append(curve, benchfmt.CurvePoint{AtMS: durMS(pt.At), Objective: pt.Objective})
	}
	return curve
}

// percentile is the nearest-rank percentile of sorted values.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// loadInstance resolves a named case-study instance.
func loadInstance(name string) (*core.Problem, error) {
	switch strings.ToLower(name) {
	case "sdr":
		return sdr.Problem(), nil
	case "sdr2":
		return sdr.SDR2(), nil
	case "sdr3":
		return sdr.SDR3(), nil
	default:
		return nil, fmt.Errorf("unknown instance %q (want sdr, sdr2 or sdr3)", name)
	}
}

// splitList parses a comma-separated flag value, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func durMS(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}
