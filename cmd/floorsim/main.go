// Command floorsim is the online-session load driver: it generates a
// seeded arrival/departure workload, replays it against a
// session.Manager — greedy best-fit placement over maximal empty
// rectangles, budgeted floorplanner fallback for hard arrivals, and
// threshold-triggered no-break defragmentation through the bitstream
// config-memory model — and emits a schema-versioned SIM.json
// (internal/simfmt) capturing placement counters, the fragmentation
// trajectory and every defragmentation cycle. Committed SIM.json files
// track the online subsystem's behavior; CI runs a short smoke and
// validates the JSON.
//
// Usage:
//
//	floorsim -out SIM.json                          # default seeded run
//	floorsim -device fx70t -events 250 -seed 7 -intensity 0.6
//	floorsim -faults seed:7 -out SIM.json           # soak under injected faults
//	floorsim -validate SIM.json                     # validate an existing report
//
// -faults drives the replay through reconfig's fault-injection plan
// (see reconfig.ParseFaultPlan): frame loads fail transiently, corrupt
// frames, or get stuck, and the report then carries the retry /
// repair / rollback accounting. Validation requires zero corrupted
// frames and zero lost tasks regardless of the plan — the soak proves
// the hardened pipeline absorbs the faults.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	floorplanner "repro"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/reconfig"
	"repro/internal/session"
	"repro/internal/simfmt"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "floorsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		deviceName  = flag.String("device", "fx70t", "target device: fx70t or k160t")
		events      = flag.Int("events", 250, "workload events to generate and replay")
		seed        = flag.Int64("seed", 1, "workload generator seed")
		intensity   = flag.Float64("intensity", 0.6, "target occupancy the generator maintains (0..1]")
		fragThresh  = flag.Float64("frag-threshold", 0.55, "fragmentation threshold triggering defragmentation (negative disables)")
		cooldown    = flag.Int("cooldown", 6, "minimum events between defragmentation attempts")
		engineName  = flag.String("engine", "constructive", "fallback floorplanner engine for hard arrivals (empty disables)")
		solveBudget = flag.Duration("solve-budget", 2*time.Second, "per-fallback-solve time budget")
		faults      = flag.String("faults", "", "fault-injection plan, e.g. seed:7 or script:transient,pass (empty disables)")
		out         = flag.String("out", "SIM.json", "output report path")
		validate    = flag.String("validate", "", "validate an existing report at this path and exit")
		quiet       = flag.Bool("q", false, "suppress per-cycle progress output")
	)
	flag.Parse()

	if *validate != "" {
		f, err := os.Open(*validate)
		if err != nil {
			return err
		}
		defer f.Close()
		report, err := simfmt.Read(f)
		if err != nil {
			return err
		}
		fmt.Printf("%s: valid (schema %d, %d events, %d defrag cycles)\n",
			*validate, report.SchemaVersion, report.Events, len(report.DefragCycles))
		return nil
	}

	dev, err := deviceByName(*deviceName)
	if err != nil {
		return err
	}
	plan, err := reconfig.ParseFaultPlan(*faults)
	if err != nil {
		return err
	}
	var engine core.Engine
	if *engineName != "" {
		engine, err = floorplanner.NewEngine(*engineName)
		if err != nil {
			return err
		}
	}
	progress := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	report, err := runSim(simConfig{
		Device:        dev,
		Engine:        engine,
		Events:        *events,
		Seed:          *seed,
		Intensity:     *intensity,
		FragThreshold: *fragThresh,
		Cooldown:      *cooldown,
		SolveBudget:   *solveBudget,
		Faults:        plan,
		FaultSpec:     *faults,
		Progress:      progress,
	})
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	werr := report.Write(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}
	fmt.Println("wrote", *out)
	return nil
}

// simConfig parameterizes one driver run.
type simConfig struct {
	Device        *device.Device
	Engine        core.Engine
	Events        int
	Seed          int64
	Intensity     float64
	FragThreshold float64
	Cooldown      int
	SolveBudget   time.Duration
	// Faults, when non-nil, drives every frame load through the
	// injection plan; FaultSpec is its flag spelling, recorded in the
	// report.
	Faults    *reconfig.FaultPlan
	FaultSpec string
	// Progress, when non-nil, receives one line per defrag cycle plus a
	// summary line.
	Progress func(format string, args ...any)
}

// runSim generates the workload, replays it and assembles the report.
func runSim(cfg simConfig) (*simfmt.Report, error) {
	if cfg.Events < 1 {
		return nil, fmt.Errorf("events must be positive")
	}
	mgr, err := session.New(session.Config{
		Device:         cfg.Device,
		Engine:         cfg.Engine,
		FragThreshold:  cfg.FragThreshold,
		DefragCooldown: cfg.Cooldown,
		SolveBudget:    cfg.SolveBudget,
		Faults:         cfg.Faults,
	})
	if err != nil {
		return nil, err
	}
	workload := session.GenerateWorkload(session.WorkloadConfig{
		Seed:      cfg.Seed,
		Events:    cfg.Events,
		Intensity: cfg.Intensity,
		Device:    cfg.Device,
	})

	report := &simfmt.Report{
		SchemaVersion: simfmt.SchemaVersion,
		GoVersion:     runtime.Version(),
		Device:        cfg.Device.Name(),
		Seed:          cfg.Seed,
		Events:        len(workload),
		Intensity:     cfg.Intensity,
		FragThreshold: cfg.FragThreshold,
	}
	if cfg.Engine != nil {
		report.FallbackEngine = cfg.Engine.Name()
	}
	if host, err := os.Hostname(); err == nil {
		report.Host = host
	}
	report.FaultPlan = cfg.FaultSpec

	// expected tracks every module acknowledged as placed and not yet
	// departed; at the end of the replay each of them must still be in
	// the live set, or the pipeline lost a task.
	expected := make(map[string]bool)
	for _, ev := range workload {
		res, err := mgr.Apply(ev)
		if err != nil {
			return nil, fmt.Errorf("event (%s %q): %w", ev.Kind, ev.Name, err)
		}
		switch ev.Kind {
		case session.Arrival:
			if res.Placed {
				expected[ev.Name] = true
			}
		case session.Departure:
			if !res.Rejected {
				delete(expected, ev.Name)
			}
		}
		report.FragTrajectory = append(report.FragTrajectory, simfmt.FragPoint{
			Event:     res.Seq,
			Frag:      res.Fragmentation,
			Occupancy: res.Occupancy,
		})
		if d := res.Defrag; d != nil {
			cycle := simfmt.DefragCycle{
				AtEvent:    d.AtEvent,
				Planned:    d.Planned,
				FragBefore: d.FragBefore,
				FragAfter:  d.FragAfter,
			}
			if d.Schedule != nil {
				cycle.Executed = d.Schedule.Executed
				cycle.FramesWritten = d.Schedule.FramesWritten
				cycle.BusyMS = durMS(d.Schedule.BusyTime)
				cycle.FramesVerified = d.Schedule.FramesVerified
				cycle.CorruptedFrames = d.Schedule.CorruptedFrames
				cycle.Retries = d.Schedule.Retries
				cycle.RolledBack = d.Schedule.RolledBack
			}
			report.DefragCycles = append(report.DefragCycles, cycle)
			if cfg.Progress != nil {
				cfg.Progress("event %4d: defrag %d/%d moves, frag %.3f -> %.3f",
					d.AtEvent, cycle.Executed, cycle.Planned, d.FragBefore, d.FragAfter)
			}
		}
	}

	stats := mgr.Stats()
	snap := mgr.Snapshot()
	report.Arrivals = stats.Arrivals
	report.Departures = stats.Departures
	report.Placed = stats.Placed
	report.PlacedFallback = stats.PlacedFallback
	report.Rejected = stats.Rejected
	if stats.Arrivals > 0 {
		report.PlacementRate = float64(stats.Placed) / float64(stats.Arrivals)
	}
	report.FinalFragmentation = snap.Fragmentation
	report.FinalLive = len(snap.Live)
	report.FramesWritten = snap.Reconfig.FramesWritten
	report.BusyMS = durMS(snap.Reconfig.BusyTime)
	report.CorruptedFrames = stats.CorruptedFrames
	report.FaultsInjected = snap.Reconfig.FaultsInjected
	report.Retries = snap.Reconfig.Retries
	report.CorruptionsRepaired = snap.Reconfig.CorruptionsRepaired
	report.Rollbacks = snap.Reconfig.Rollbacks
	live := make(map[string]bool, len(snap.Live))
	for _, mod := range snap.Live {
		live[mod.Name] = true
	}
	for name := range expected {
		if !live[name] {
			report.LostTasks++
		}
	}
	report.CreatedAt = time.Now().UTC()

	if cfg.Progress != nil {
		cfg.Progress("%d events: %d placed (%d fallback), %d rejected, %d defrag cycles, final frag %.3f",
			report.Events, report.Placed, report.PlacedFallback, report.Rejected,
			len(report.DefragCycles), report.FinalFragmentation)
		if cfg.FaultSpec != "" {
			cfg.Progress("faults %q: %d injected, %d retries, %d corruptions repaired, %d rollbacks, %d lost tasks",
				cfg.FaultSpec, report.FaultsInjected, report.Retries,
				report.CorruptionsRepaired, report.Rollbacks, report.LostTasks)
		}
	}
	return report, nil
}

// deviceByName resolves a device model flag.
func deviceByName(name string) (*device.Device, error) {
	switch strings.ToLower(name) {
	case "fx70t", "virtex5", "xc5vfx70t":
		return device.VirtexFX70T(), nil
	case "k160t", "kintex7", "xc7k160t":
		return device.Kintex7K160T(), nil
	default:
		return nil, fmt.Errorf("unknown device %q (want fx70t or k160t)", name)
	}
}

func durMS(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}
