package main

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/heuristic"
	"repro/internal/reconfig"
)

// TestEndToEndFX70T is the subsystem's acceptance demo: a seeded
// workload of 250 events on the FX70T must sustain placements, trigger
// at least one executed defragmentation cycle whose relocation schedule
// flows through the bitstream config-memory with zero corrupted frames,
// and at least one cycle must push fragmentation strictly below the
// trigger threshold. The resulting report must validate as SIM.json.
func TestEndToEndFX70T(t *testing.T) {
	const threshold = 0.55
	report, err := runSim(simConfig{
		Device:        device.VirtexFX70T(),
		Engine:        &heuristic.Constructive{},
		Events:        250,
		Seed:          7,
		Intensity:     0.6,
		FragThreshold: threshold,
		Cooldown:      6,
		SolveBudget:   2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	if report.Events < 200 {
		t.Fatalf("replayed %d events, want >= 200", report.Events)
	}
	if report.Placed == 0 || report.PlacementRate < 0.5 {
		t.Fatalf("placements did not sustain: placed=%d rate=%v", report.Placed, report.PlacementRate)
	}
	if report.CorruptedFrames != 0 {
		t.Fatalf("%d corrupted frames", report.CorruptedFrames)
	}

	executed := 0
	belowThreshold := false
	for _, c := range report.DefragCycles {
		if c.Executed == 0 {
			continue
		}
		executed++
		if c.Executed != c.Planned {
			t.Fatalf("cycle at event %d executed %d of %d planned moves", c.AtEvent, c.Executed, c.Planned)
		}
		if c.FramesVerified == 0 || c.CorruptedFrames != 0 {
			t.Fatalf("cycle at event %d: verified=%d corrupted=%d", c.AtEvent, c.FramesVerified, c.CorruptedFrames)
		}
		if c.FragAfter < threshold {
			belowThreshold = true
		}
	}
	if executed == 0 {
		t.Fatal("no defragmentation cycle executed")
	}
	if !belowThreshold {
		t.Fatalf("no executed cycle pushed fragmentation below the %v threshold", threshold)
	}

	// The report must survive its own schema validation and round-trip.
	var buf bytes.Buffer
	if err := report.Write(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestRunSimDeterministic(t *testing.T) {
	cfg := simConfig{
		Device:        device.VirtexFX70T(),
		Events:        80,
		Seed:          3,
		Intensity:     0.55,
		FragThreshold: 0.55,
		Cooldown:      6,
	}
	a, err := runSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Placed != b.Placed || a.Rejected != b.Rejected || len(a.DefragCycles) != len(b.DefragCycles) {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	for i := range a.FragTrajectory {
		if a.FragTrajectory[i] != b.FragTrajectory[i] {
			t.Fatalf("trajectory diverged at point %d", i)
		}
	}
}

// TestRunSimFaultSoak replays a workload under seeded fault injection:
// the hardened pipeline must absorb every fault — reporting its retry
// and repair work — with zero corrupted frames and zero lost tasks, and
// the report must still validate.
func TestRunSimFaultSoak(t *testing.T) {
	plan, err := reconfig.ParseFaultPlan("seed:7")
	if err != nil {
		t.Fatal(err)
	}
	report, err := runSim(simConfig{
		Device:        device.VirtexFX70T(),
		Events:        150,
		Seed:          3,
		Intensity:     0.6,
		FragThreshold: 0.55,
		Cooldown:      6,
		Faults:        plan,
		FaultSpec:     "seed:7",
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.FaultsInjected == 0 || report.Retries == 0 {
		t.Fatalf("soak injected no faults: %+v", report)
	}
	if report.CorruptedFrames != 0 || report.LostTasks != 0 {
		t.Fatalf("soak corrupted %d frames, lost %d tasks", report.CorruptedFrames, report.LostTasks)
	}
	var buf bytes.Buffer
	if err := report.Write(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceByName(t *testing.T) {
	if _, err := deviceByName("fx70t"); err != nil {
		t.Fatal(err)
	}
	if _, err := deviceByName("k160t"); err != nil {
		t.Fatal(err)
	}
	if _, err := deviceByName("nope"); err == nil {
		t.Fatal("unknown device accepted")
	}
}
