// Command floorpland runs the floorplanning service daemon: an HTTP/JSON
// API over the floorplanner engines with a solution cache, a bounded
// worker pool and Prometheus-style metrics.
//
// Usage:
//
//	floorpland -addr :8080 -workers 4 -queue 128 -cache 512
//	floorpland -default-engine portfolio -default-time 10s
//	floorpland -pprof localhost:6060   # profiler on a separate listener
//
// Endpoints:
//
//	POST /v1/solve          solve a problem (floorplanner.Problem JSON + options)
//	GET  /v1/engines        list available engines
//	POST /v1/sessions       create an online-placement session (stateful
//	                        arrivals/departures with defragmentation)
//	GET  /v1/sessions       list live sessions
//	GET  /v1/sessions/{id}  session snapshot; DELETE closes it
//	POST /v1/sessions/{id}/events  apply an arrival/departure batch
//	GET  /healthz           liveness probe
//	GET  /metrics           counters, per-engine latency/work/incumbent-time
//	                        histograms; when the portfolio engine runs, also
//	                        per-member race/win/latency counters
//	GET  /debug/solves      recent solve records (flight recorder) + per-engine
//	                        distribution summaries; ?n= bounds the list
//	GET  /debug/solves/{id} one solve record with its full telemetry trace
//	GET  /debug/events      wide-event pipeline counters + the kept event
//	                        tail (tail-sampled); ?n= bounds the list
//	GET  /debug/slo         per-objective error budgets, burn rates and
//	                        alert states
//	GET  /debug/bundle      capture a diagnostic bundle on demand and
//	                        stream it back as tar.gz (floorplanctl diag
//	                        is the CLI front end)
//
// Logs go to stderr at -log-level (default info) in -log-format (default
// text; json for machine ingestion).
//
// -events FILE exports one JSON line per kept wide event (every solve
// and session batch that survives tail sampling) to a size-rotated file;
// without it events stay in the in-memory tail behind /debug/events.
//
// -session-dir makes online-placement sessions durable: every applied
// event batch is written to a per-session write-ahead log before the
// response is acknowledged, periodic snapshots bound replay, and on
// start the daemon replays every recoverable session — frame-verified —
// back into the registry. -faults drives reconfiguration frame loads
// through an injected-fault plan (resilience testing; see
// reconfig.ParseFaultPlan).
//
// -profile-every enables the continuous profiler: a short CPU profile
// each interval, attributed per engine/phase via goroutine labels into
// the floorpland_profile_* metric families. -diag-dir arms anomaly
// triggers (panic, invalid solution, budget overrun, SLO alert,
// reconfiguration rollback) that snapshot rate-limited diagnostic
// bundles (bundle-<ts>.tar.gz) there; -chaos injects scripted or
// seeded solve-path faults to fire-drill exactly that machinery.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: it stops accepting
// requests, drains in-flight solves and cancels queued ones; with
// -session-dir set it also flushes a final snapshot per live session.
// SIGUSR1 dumps the flight recorder ring to -flight-dump as JSON without
// interrupting service. SIGUSR2 captures a diagnostic bundle into
// -diag-dir on demand.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"strings"
	"syscall"
	"time"

	floorplanner "repro"
	"repro/internal/guard"
	"repro/internal/logx"
	"repro/internal/reconfig"
	"repro/internal/server"
	"repro/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "floorpland:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent solves")
		queue        = flag.Int("queue", 64, "queued solves before 429 backpressure")
		cacheSize    = flag.Int("cache", 256, "cached solutions (LRU)")
		engine       = flag.String("default-engine", "exact", "engine used when a request names none")
		fallback     = flag.String("fallback", "", "comma-separated engine chain for the \"fallback\" engine (empty = exact,milp-ho,constructive)")
		brkThreshold = flag.Int("breaker-threshold", 5, "consecutive engine failures that open its circuit breaker (negative disables)")
		brkCooldown  = flag.Duration("breaker-cooldown", 30*time.Second, "how long an open circuit breaker waits before a half-open probe")
		defaultLimit = flag.Duration("default-time", 30*time.Second, "time limit when a request names none")
		maxLimit     = flag.Duration("max-time", 2*time.Minute, "per-request time limit cap")
		drainTimeout = flag.Duration("drain", 2*time.Minute, "shutdown drain budget for in-flight solves")
		logLevel     = flag.String("log-level", "info", "log level: "+logx.Levels)
		logFormat    = flag.String("log-format", "text", "log format: "+logx.Formats)
		maxSessions  = flag.Int("max-sessions", 16, "live online-placement sessions the daemon holds")
		sessionTTL   = flag.Duration("session-ttl", 30*time.Minute, "idle time before a session is reclaimed")
		sessionDir   = flag.String("session-dir", "", "persist sessions (WAL + snapshots) under this directory and recover them on start (empty = in-memory only)")
		sessionSnap  = flag.Int("session-snapshot-every", 0, "WAL records between session snapshots (0 = 64)")
		faultSpec    = flag.String("faults", "", "reconfiguration fault-injection plan, e.g. seed:7 or script:transient,pass (empty disables; for resilience testing)")
		flightSize   = flag.Int("flight", 256, "solve records kept in the flight recorder ring (/debug/solves)")
		flightDump   = flag.String("flight-dump", "floorpland-flight.json", "file the flight ring is dumped to on SIGUSR1")
		eventsPath   = flag.String("events", "", "export wide events as JSON lines to this file (empty keeps them in-memory only)")
		eventsMax    = flag.Int64("events-max-bytes", 0, "rotate the events file past this size (0 = 8 MiB)")
		eventsKeep   = flag.Int("events-keep", 0, "rotated events files kept (0 = 2)")
		eventsSample = flag.Float64("events-sample", 0, "keep probability for unremarkable events; errors, budget breaches and the slow tail are always kept (0 = 0.1, 1 keeps everything)")
		eventsTail   = flag.Int("events-tail", 0, "wide events kept in memory behind /debug/events (0 = 256)")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
		diagDir      = flag.String("diag-dir", "", "write anomaly-triggered diagnostic bundles (bundle-<ts>.tar.gz) to this directory (empty disables triggers; /debug/bundle still works)")
		diagKeep     = flag.Int("diag-keep", 0, "diagnostic bundles kept in -diag-dir before rotation (0 = 8)")
		diagInterval = flag.Duration("diag-min-interval", 0, "minimum time between anomaly-triggered bundles (0 = 1m)")
		profEvery    = flag.Duration("profile-every", 0, "continuous-profiler cadence: a short CPU profile each interval, attributed per engine/phase into floorpland_profile_* metrics (0 disables)")
		profCPU      = flag.Duration("profile-cpu", 0, "CPU window per profiler cycle and bundle capture (0 = 250ms)")
		chaosSpec    = flag.String("chaos", "", "solve-path chaos injection, e.g. seed:7 or script:panic,pass (empty disables; fire drills for the guard/diag layers)")
	)
	flag.Parse()

	log, err := logx.New(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}

	if _, err := floorplanner.NewEngine(*engine); err != nil {
		return err
	}
	var fallbackChain []string
	if *fallback != "" {
		fallbackChain = strings.Split(*fallback, ",")
		// Fail fast on typos: the chain must assemble.
		if _, err := floorplanner.NewFallback(fallbackChain...); err != nil {
			return err
		}
	}
	faultPlan, err := reconfig.ParseFaultPlan(*faultSpec)
	if err != nil {
		return err
	}
	chaosCfg, err := guard.ParseChaosSpec(*chaosSpec)
	if err != nil {
		return err
	}
	var eventSink telemetry.Sink
	if *eventsPath != "" {
		fs, err := telemetry.NewFileSink(*eventsPath, *eventsMax, *eventsKeep)
		if err != nil {
			return err
		}
		// The exporter owns the sink: Server.Close closes it after the
		// queue drains.
		eventSink = fs
	}
	srv := server.New(server.Config{
		Workers:              *workers,
		QueueSize:            *queue,
		CacheSize:            *cacheSize,
		DefaultEngine:        *engine,
		FallbackChain:        fallbackChain,
		BreakerThreshold:     *brkThreshold,
		BreakerCooldown:      *brkCooldown,
		DefaultTimeLimit:     *defaultLimit,
		MaxTimeLimit:         *maxLimit,
		MaxSessions:          *maxSessions,
		SessionTTL:           *sessionTTL,
		SessionDir:           *sessionDir,
		SessionSnapshotEvery: *sessionSnap,
		SessionFaults:        faultPlan,
		FlightSize:           *flightSize,
		EventSink:            eventSink,
		EventTailSize:        *eventsTail,
		EventSampleRate:      *eventsSample,
		DiagDir:              *diagDir,
		DiagKeep:             *diagKeep,
		DiagMinInterval:      *diagInterval,
		ProfileEvery:         *profEvery,
		ProfileCPUDuration:   *profCPU,
		Chaos:                chaosCfg,
		Logger:               log,
		Version:              buildVersion(),
	})

	// SIGUSR1 dumps the flight ring — the last -flight solve records,
	// traces included — to -flight-dump as JSON, for post-mortems without
	// stopping the daemon.
	usr1 := make(chan os.Signal, 1)
	signal.Notify(usr1, syscall.SIGUSR1)
	go func() {
		for range usr1 {
			if err := srv.FlightRecorder().WriteFile(*flightDump); err != nil {
				log.Error("flight dump failed", "path", *flightDump, "err", err)
				continue
			}
			log.Info("flight ring dumped", "path", *flightDump, "records", srv.FlightRecorder().Len())
		}
	}()

	// SIGUSR2 snapshots a full diagnostic bundle — CPU profile, heap and
	// goroutine dumps, flight ring, events tail, SLO/breaker state — into
	// -diag-dir, bypassing the anomaly triggers' rate limit.
	usr2 := make(chan os.Signal, 1)
	signal.Notify(usr2, syscall.SIGUSR2)
	go func() {
		for range usr2 {
			path, err := srv.CaptureDiagBundle("SIGUSR2")
			if err != nil {
				log.Error("diag bundle failed", "err", err)
				continue
			}
			log.Info("diag bundle written", "path", path)
		}
	}()

	if *pprofAddr != "" {
		// The profiler gets its own mux on its own listener so the
		// debugging surface is never reachable through the public API
		// address. Bind it to localhost in production.
		pprofMux := http.NewServeMux()
		pprofMux.HandleFunc("/debug/pprof/", pprof.Index)
		pprofMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pprofMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pprofMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pprofMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pprofMux); err != nil {
				log.Warn("pprof server", "err", err)
			}
		}()
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		log.Info("listening", "addr", *addr, "workers", *workers, "queue", *queue, "cache", *cacheSize)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		log.Info("shutting down", "signal", sig.String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Warn("http shutdown", "err", err)
	}
	if err := srv.Close(ctx); err != nil {
		return fmt.Errorf("draining worker pool: %w", err)
	}
	log.Info("drained, bye")
	return nil
}

// buildVersion labels the floorpland_build_info metric from the binary's
// embedded module metadata ("dev" for uninstalled builds).
func buildVersion() string {
	if info, ok := debug.ReadBuildInfo(); ok && info.Main.Version != "" && info.Main.Version != "(devel)" {
		return info.Main.Version
	}
	return "dev"
}
