// Command floorpland runs the floorplanning service daemon: an HTTP/JSON
// API over the floorplanner engines with a solution cache, a bounded
// worker pool and Prometheus-style metrics.
//
// Usage:
//
//	floorpland -addr :8080 -workers 4 -queue 128 -cache 512
//	floorpland -default-engine portfolio -default-time 10s
//	floorpland -pprof localhost:6060   # profiler on a separate listener
//
// Endpoints:
//
//	POST /v1/solve    solve a problem (floorplanner.Problem JSON + options)
//	GET  /v1/engines  list available engines
//	GET  /healthz     liveness probe
//	GET  /metrics     counters and latency histograms; when the portfolio
//	                  engine runs, also per-member race/win/latency counters
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: it stops accepting
// requests, drains in-flight solves and cancels queued ones.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"strings"
	"syscall"
	"time"

	floorplanner "repro"
	"repro/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "floorpland:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent solves")
		queue        = flag.Int("queue", 64, "queued solves before 429 backpressure")
		cacheSize    = flag.Int("cache", 256, "cached solutions (LRU)")
		engine       = flag.String("default-engine", "exact", "engine used when a request names none")
		fallback     = flag.String("fallback", "", "comma-separated engine chain for the \"fallback\" engine (empty = exact,milp-ho,constructive)")
		brkThreshold = flag.Int("breaker-threshold", 5, "consecutive engine failures that open its circuit breaker (negative disables)")
		brkCooldown  = flag.Duration("breaker-cooldown", 30*time.Second, "how long an open circuit breaker waits before a half-open probe")
		defaultLimit = flag.Duration("default-time", 30*time.Second, "time limit when a request names none")
		maxLimit     = flag.Duration("max-time", 2*time.Minute, "per-request time limit cap")
		drainTimeout = flag.Duration("drain", 2*time.Minute, "shutdown drain budget for in-flight solves")
		logJSON      = flag.Bool("log-json", false, "emit structured logs as JSON")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
	)
	flag.Parse()

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	log := slog.New(handler)

	if _, err := floorplanner.NewEngine(*engine); err != nil {
		return err
	}
	var fallbackChain []string
	if *fallback != "" {
		fallbackChain = strings.Split(*fallback, ",")
		// Fail fast on typos: the chain must assemble.
		if _, err := floorplanner.NewFallback(fallbackChain...); err != nil {
			return err
		}
	}
	srv := server.New(server.Config{
		Workers:          *workers,
		QueueSize:        *queue,
		CacheSize:        *cacheSize,
		DefaultEngine:    *engine,
		FallbackChain:    fallbackChain,
		BreakerThreshold: *brkThreshold,
		BreakerCooldown:  *brkCooldown,
		DefaultTimeLimit: *defaultLimit,
		MaxTimeLimit:     *maxLimit,
		Logger:           log,
		Version:          buildVersion(),
	})

	if *pprofAddr != "" {
		// The profiler gets its own mux on its own listener so the
		// debugging surface is never reachable through the public API
		// address. Bind it to localhost in production.
		pprofMux := http.NewServeMux()
		pprofMux.HandleFunc("/debug/pprof/", pprof.Index)
		pprofMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pprofMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pprofMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pprofMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pprofMux); err != nil {
				log.Warn("pprof server", "err", err)
			}
		}()
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		log.Info("listening", "addr", *addr, "workers", *workers, "queue", *queue, "cache", *cacheSize)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		log.Info("shutting down", "signal", sig.String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Warn("http shutdown", "err", err)
	}
	if err := srv.Close(ctx); err != nil {
		return fmt.Errorf("draining worker pool: %w", err)
	}
	log.Info("drained, bye")
	return nil
}

// buildVersion labels the floorpland_build_info metric from the binary's
// embedded module metadata ("dev" for uninstalled builds).
func buildVersion() string {
	if info, ok := debug.ReadBuildInfo(); ok && info.Main.Version != "" && info.Main.Version != "(devel)" {
		return info.Main.Version
	}
	return "dev"
}
