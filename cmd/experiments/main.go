// Command experiments regenerates every table and figure of the paper's
// evaluation (see EXPERIMENTS.md for the paper-vs-measured discussion).
//
// Usage:
//
//	experiments -all -budget 60s
//	experiments -table2
//	experiments -fig4 -svgdir out/
//	experiments -telemetry -design SDR2 -budget 10s
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	floorplanner "repro"
	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		all         = flag.Bool("all", false, "run every experiment")
		table1      = flag.Bool("table1", false, "Table I: SDR resource requirements")
		feasibility = flag.Bool("feasibility", false, "per-region free-compatible-area feasibility")
		table2      = flag.Bool("table2", false, "Table II: floorplan comparison")
		fig1        = flag.Bool("fig1", false, "Figure 1: area compatibility example")
		fig2        = flag.Bool("fig2", false, "Figure 2: columnar partitioning example")
		fig4        = flag.Bool("fig4", false, "Figure 4: SDR2 floorplan")
		fig5        = flag.Bool("fig5", false, "Figure 5: SDR3 floorplan")
		runtime     = flag.Bool("runtime", false, "runtime relocation benefits (latency, storage)")
		portfolioF  = flag.Bool("portfolio", false, "portfolio race: engines under one shared budget per design")
		telemetry   = flag.Bool("telemetry", false, "per-engine solve telemetry (nodes, pivots, incumbents)")
		design      = flag.String("design", "SDR2", "SDR instance for -telemetry: SDR, SDR2 or SDR3")
		budget      = flag.Duration("budget", 60*time.Second, "per-solve time budget")
		svgDir      = flag.String("svgdir", "", "also write figures as SVG into this directory")
	)
	flag.Parse()
	if !(*table1 || *feasibility || *table2 || *fig1 || *fig2 || *fig4 || *fig5 || *runtime || *portfolioF || *telemetry) {
		*all = true
	}
	ctx := context.Background()

	if *all || *table1 {
		rows, err := experiments.Table1()
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatTable1(rows))
	}
	if *all || *fig1 {
		fmt.Println(experiments.Figure1())
	}
	if *all || *fig2 {
		out, err := experiments.Figure2()
		if err != nil {
			return err
		}
		fmt.Println(out)
	}
	if *all || *feasibility {
		rows, err := experiments.Feasibility(ctx, *budget)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatFeasibility(rows))
	}
	if *all || *table2 {
		rows, err := experiments.Table2(ctx, *budget)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatTable2(rows))
	}
	if *all || *fig4 {
		if err := figure(ctx, "SDR2", "Figure 4", *budget, *svgDir); err != nil {
			return err
		}
	}
	if *all || *fig5 {
		if err := figure(ctx, "SDR3", "Figure 5", *budget, *svgDir); err != nil {
			return err
		}
	}
	if *all || *runtime {
		rep, err := experiments.Runtime(ctx, *budget)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatRuntime(rep))
	}
	if *all || *portfolioF {
		rows, err := experiments.PortfolioRace(ctx, *budget)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatPortfolio(rows))
	}
	if *all || *telemetry {
		rows, err := experiments.Telemetry(ctx, *design, *budget)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatTelemetry(rows))
	}
	return nil
}

func figure(ctx context.Context, design, label string, budget time.Duration, svgDir string) error {
	p, sol, err := experiments.Floorplan(ctx, design, budget)
	if err != nil {
		return fmt.Errorf("%s (%s): %w", label, design, err)
	}
	m := sol.Metrics(p)
	fmt.Printf("%s: %s floorplan (%d free-compatible areas, %d wasted frames)\n",
		label, design, m.PlacedFC, m.WastedFrames)
	fmt.Print(core.RenderASCII(p, sol))
	fmt.Println()
	if svgDir != "" {
		if err := os.MkdirAll(svgDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(svgDir, design+".svg")
		if err := os.WriteFile(path, []byte(floorplanner.RenderSVG(p, sol)), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", path)
	}
	return nil
}
