// Command relocate is the standalone bitstream relocation filter (the
// REPLICA/BiRF role in the paper's toolchain): it retargets an encoded
// partial bitstream to a compatible area of the device, rewriting frame
// addresses and recomputing the CRC.
//
// Usage:
//
//	relocate -generate -area 4,0,6,5 -seed 7 -out cr.pbit        # make a test bitstream
//	relocate -in cr.pbit -to 24,3 -out cr-moved.pbit             # relocate it
//	relocate -in cr.pbit -targets                                # list legal targets
//
// The device defaults to the paper's Virtex-5 FX70T; pass -device with a
// JSON device description for anything else.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bitstream"
	"repro/internal/device"
	"repro/internal/grid"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "relocate:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		devicePath = flag.String("device", "", "device JSON (default: Virtex-5 FX70T)")
		generate   = flag.Bool("generate", false, "generate a synthetic bitstream instead of reading one")
		areaSpec   = flag.String("area", "", "area x,y,w,h for -generate")
		seed       = flag.Int64("seed", 1, "design seed for -generate")
		inPath     = flag.String("in", "", "input bitstream file")
		toSpec     = flag.String("to", "", "relocation target x,y")
		listOnly   = flag.Bool("targets", false, "list the compatible relocation targets and exit")
		outPath    = flag.String("out", "", "output bitstream file")
	)
	flag.Parse()

	dev, err := loadDevice(*devicePath)
	if err != nil {
		return err
	}

	var bs *bitstream.Bitstream
	switch {
	case *generate:
		area, err := parseRect(*areaSpec)
		if err != nil {
			return fmt.Errorf("-area: %w", err)
		}
		bs, err = bitstream.Generate(dev, area, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("generated %d frames for %v on %s\n", bs.FrameCount(), area, dev.Name())
	case *inPath != "":
		f, err := os.Open(*inPath)
		if err != nil {
			return err
		}
		bs, err = bitstream.Decode(f)
		f.Close()
		if err != nil {
			return err
		}
		if !bs.CheckCRC() {
			return fmt.Errorf("%s: CRC mismatch (corrupted or unsealed)", *inPath)
		}
		fmt.Printf("loaded %d frames for %v on %s\n", bs.FrameCount(), bs.Area, bs.DeviceName)
	default:
		return fmt.Errorf("specify -generate or -in <file>")
	}

	if *listOnly {
		for _, target := range dev.CompatiblePlacements(bs.Area) {
			marker := ""
			if target == bs.Area {
				marker = "  (current)"
			}
			fmt.Printf("  %v%s\n", target, marker)
		}
		return nil
	}

	if *toSpec != "" {
		x, y, err := parseXY(*toSpec)
		if err != nil {
			return fmt.Errorf("-to: %w", err)
		}
		target := grid.Rect{X: x, Y: y, W: bs.Area.W, H: bs.Area.H}
		moved, err := bitstream.Relocate(dev, bs, target)
		if err != nil {
			return err
		}
		fmt.Printf("relocated %v -> %v, CRC %08x\n", bs.Area, moved.Area, moved.CRC)
		bs = moved
	}

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := bs.Encode(f); err != nil {
			return err
		}
		fmt.Println("wrote", *outPath)
	}
	return nil
}

func loadDevice(path string) (*device.Device, error) {
	if path == "" {
		return device.VirtexFX70T(), nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d device.Device
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &d, nil
}

func parseRect(spec string) (grid.Rect, error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 4 {
		return grid.Rect{}, fmt.Errorf("want x,y,w,h, got %q", spec)
	}
	vals := make([]int, 4)
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return grid.Rect{}, err
		}
		vals[i] = v
	}
	return grid.Rect{X: vals[0], Y: vals[1], W: vals[2], H: vals[3]}, nil
}

func parseXY(spec string) (int, int, error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("want x,y, got %q", spec)
	}
	x, err := strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil {
		return 0, 0, err
	}
	y, err := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err != nil {
		return 0, 0, err
	}
	return x, y, nil
}
