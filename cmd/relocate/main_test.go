package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/device"
	"repro/internal/grid"
)

func TestParseRect(t *testing.T) {
	r, err := parseRect("4, 0, 6, 5")
	if err != nil {
		t.Fatal(err)
	}
	if r != (grid.Rect{X: 4, Y: 0, W: 6, H: 5}) {
		t.Fatalf("rect = %v", r)
	}
	if _, err := parseRect("1,2,3"); err == nil {
		t.Fatal("short spec accepted")
	}
	if _, err := parseRect("a,b,c,d"); err == nil {
		t.Fatal("non-numeric spec accepted")
	}
}

func TestParseXY(t *testing.T) {
	x, y, err := parseXY("24,3")
	if err != nil || x != 24 || y != 3 {
		t.Fatalf("xy = %d,%d err=%v", x, y, err)
	}
	if _, _, err := parseXY("24"); err == nil {
		t.Fatal("short spec accepted")
	}
}

func TestLoadDevice(t *testing.T) {
	d, err := loadDevice("")
	if err != nil || d.Name() != "xc5vfx70t" {
		t.Fatalf("default device = %v, %v", d, err)
	}
	// Round-trip a custom device through a file.
	custom := device.Figure1Device()
	data, err := json.Marshal(custom)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "dev.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := loadDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != custom.Name() || back.Width() != custom.Width() {
		t.Fatal("device lost in file round trip")
	}
	if _, err := loadDevice(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
