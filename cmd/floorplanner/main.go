// Command floorplanner solves relocation-aware floorplanning problems
// from the command line.
//
// Usage:
//
//	floorplanner -design SDR2 -engine exact -time 30s -ascii
//	floorplanner -design SDR3 -engine portfolio -time 10s
//	floorplanner -design SDR2 -engine milp-ho -trace   # telemetry table
//	floorplanner -design SDR2 -engine portfolio -members exact,constructive,tessellation
//	floorplanner -design SDR2 -fallback exact,milp-ho,constructive
//	floorplanner -problem my-problem.json -svg plan.svg -out solution.json
//	floorplanner -session events.json -session-device fx70t -engine constructive
//	floorplanner -session seeded:200 -seed 7      # generated online workload
//
// A problem file is JSON with the shape of floorplanner.Problem; the
// built-in designs SDR, SDR2 and SDR3 reproduce the paper's case study.
//
// -session switches the binary into online mode: instead of one offline
// solve it replays an arrival/departure stream (a JSON array of session
// events, or "seeded:N" for a generated workload) through a stateful
// session — best-fit placement over free rectangles, floorplanner
// fallback via -engine, threshold-triggered defragmentation — and
// prints the placement and fragmentation summary.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strconv"
	"strings"
	"time"

	floorplanner "repro"
	"repro/internal/core"
	"repro/internal/logx"
	"repro/internal/sdr"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "floorplanner:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		problemPath = flag.String("problem", "", "path to a problem JSON file")
		design      = flag.String("design", "", "built-in design: SDR, SDR2 or SDR3")
		engine      = flag.String("engine", "exact", "engine: "+strings.Join(floorplanner.EngineNames(), ", "))
		members     = flag.String("members", "", "comma-separated member engines raced by -engine portfolio (empty = default race)")
		fallback    = flag.String("fallback", "", "comma-separated engine chain; implies -engine fallback (empty chain = exact,milp-ho,constructive)")
		timeLimit   = flag.Duration("time", 60*time.Second, "solve time limit")
		seed        = flag.Int64("seed", 1, "seed for randomized engines")
		workers     = flag.Int("workers", 0, "parallel workers (engine dependent)")
		outPath     = flag.String("out", "", "write the solution as JSON to this file")
		ascii       = flag.Bool("ascii", true, "print the floorplan as ASCII art")
		svgPath     = flag.String("svg", "", "write the floorplan as SVG to this file")
		trace       = flag.Bool("trace", false, "print solve telemetry: per-span counters and the incumbent trajectory")
		sessionSpec = flag.String("session", "", "online mode: replay a JSON event stream from this file, or \"seeded:N\" to generate N events with -seed")
		sessionDev  = flag.String("session-device", "fx70t", "device for -session mode: fx70t or k160t")
		fragThresh  = flag.Float64("frag-threshold", 0, "fragmentation threshold for -session mode (0 = default, negative disables defragmentation)")
		logLevel    = flag.String("log-level", "info", "log level: "+logx.Levels)
		logFormat   = flag.String("log-format", "text", "log format: "+logx.Formats)
	)
	flag.Parse()

	// Results go to stdout; structured logs (engine warnings, guard
	// recoveries) go to stderr through the shared handler, so the two
	// binaries speak one logging dialect.
	log, err := logx.New(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	slog.SetDefault(log)

	if *sessionSpec != "" {
		if *problemPath != "" || *design != "" {
			return fmt.Errorf("-session is an online mode; drop -problem/-design")
		}
		return runSession(*sessionSpec, *sessionDev, *engine, *fragThresh, *seed, *timeLimit, *outPath)
	}

	p, err := loadProblem(*problemPath, *design)
	if err != nil {
		return err
	}
	if err := p.Validate(); err != nil {
		return err
	}

	var memberList []string
	if *members != "" {
		if *engine != "portfolio" {
			return fmt.Errorf("-members requires -engine portfolio")
		}
		memberList = strings.Split(*members, ",")
	}
	if *fallback != "" {
		if *members != "" {
			return fmt.Errorf("-fallback and -members are mutually exclusive")
		}
		if *engine != "exact" && *engine != "fallback" {
			return fmt.Errorf("-fallback implies -engine fallback; drop -engine %s", *engine)
		}
		*engine = "fallback"
		memberList = strings.Split(*fallback, ",")
	}

	solveOpts := floorplanner.Options{
		Engine:    *engine,
		TimeLimit: *timeLimit,
		Seed:      *seed,
		Workers:   *workers,
		Members:   memberList,
	}
	var rec *floorplanner.Recorder
	if *trace {
		rec = floorplanner.NewRecorder()
		solveOpts.Probe = rec
	}
	sol, err := floorplanner.Solve(context.Background(), p, solveOpts)
	if rec != nil {
		// Print the telemetry before the outcome so it survives even the
		// error paths below.
		fmt.Print(rec.Table())
		fmt.Println()
	}
	switch {
	case errors.Is(err, floorplanner.ErrInfeasible):
		fmt.Println("INFEASIBLE: no floorplan satisfies the constraints")
		return nil
	case errors.Is(err, floorplanner.ErrNoSolution):
		return fmt.Errorf("no solution found within %s (try a larger -time)", *timeLimit)
	case err != nil:
		return err
	}

	fmt.Print(sol.Summary(p))
	if *ascii {
		fmt.Println()
		fmt.Print(floorplanner.RenderASCII(p, sol))
	}
	if *svgPath != "" {
		if err := os.WriteFile(*svgPath, []byte(floorplanner.RenderSVG(p, sol)), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", *svgPath)
	}
	if *outPath != "" {
		data, err := json.MarshalIndent(sol, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", *outPath)
	}
	return nil
}

// runSession is the -session online mode: replay an event stream
// through a facade Session and print what happened.
func runSession(spec, deviceName, engineName string, fragThresh float64, seed int64, budget time.Duration, outPath string) error {
	var dev *floorplanner.Device
	switch strings.ToLower(deviceName) {
	case "fx70t", "virtex5", "xc5vfx70t":
		dev = floorplanner.VirtexFX70T()
	case "k160t", "kintex7", "xc7k160t":
		dev = floorplanner.Kintex7K160T()
	default:
		return fmt.Errorf("unknown -session-device %q (want fx70t or k160t)", deviceName)
	}
	engine, err := floorplanner.NewEngine(engineName)
	if err != nil {
		return err
	}

	var events []floorplanner.SessionEvent
	if rest, ok := strings.CutPrefix(spec, "seeded:"); ok {
		n, err := strconv.Atoi(rest)
		if err != nil || n <= 0 {
			return fmt.Errorf("-session seeded:N needs a positive event count, got %q", rest)
		}
		events = floorplanner.GenerateWorkload(floorplanner.WorkloadConfig{
			Seed: seed, Events: n, Device: dev,
		})
	} else {
		data, err := os.ReadFile(spec)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &events); err != nil {
			return fmt.Errorf("parsing %s: %w", spec, err)
		}
	}
	if len(events) == 0 {
		return fmt.Errorf("event stream is empty")
	}

	mgr, err := floorplanner.NewSession(floorplanner.SessionConfig{
		Device:        dev,
		Engine:        engine,
		FragThreshold: fragThresh,
		SolveBudget:   budget,
	})
	if err != nil {
		return err
	}
	for i, ev := range events {
		res, err := mgr.Apply(ev)
		if err != nil {
			return fmt.Errorf("event %d (%s %q): %w", i+1, ev.Kind, ev.Name, err)
		}
		if res.Rejected && ev.Kind == floorplanner.SessionArrival {
			fmt.Printf("event %4d: rejected %q (%s)\n", res.Seq, ev.Name, res.Reason)
		}
		if d := res.Defrag; d != nil && d.Executed {
			fmt.Printf("event %4d: defrag %d moves, frag %.3f -> %.3f\n",
				d.AtEvent, d.Planned, d.FragBefore, d.FragAfter)
		}
	}

	snap := mgr.Snapshot()
	st := snap.Stats
	fmt.Printf("%d events on %s: %d placed (%d fallback), %d rejected, %d live\n",
		st.Events, snap.Device, st.Placed, st.PlacedFallback, st.Rejected, len(snap.Live))
	fmt.Printf("defrag: %d cycles, %d moves, %d corrupted frames\n",
		st.DefragCycles, st.DefragMoves, st.CorruptedFrames)
	fmt.Printf("final fragmentation %.3f, occupancy %.3f, reconfig busy %s\n",
		snap.Fragmentation, snap.Occupancy, snap.Reconfig.BusyTime.Round(time.Microsecond))
	if outPath != "" {
		data, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", outPath)
	}
	return nil
}

func loadProblem(path, design string) (*core.Problem, error) {
	switch {
	case path != "" && design != "":
		return nil, fmt.Errorf("use either -problem or -design, not both")
	case path != "":
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var p core.Problem
		if err := json.Unmarshal(data, &p); err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		return &p, nil
	case strings.EqualFold(design, "SDR"):
		return sdr.Problem(), nil
	case strings.EqualFold(design, "SDR2"):
		return sdr.SDR2(), nil
	case strings.EqualFold(design, "SDR3"):
		return sdr.SDR3(), nil
	case design != "":
		return nil, fmt.Errorf("unknown design %q (want SDR, SDR2 or SDR3)", design)
	default:
		return nil, fmt.Errorf("specify -problem <file> or -design <name>")
	}
}
