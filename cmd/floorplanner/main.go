// Command floorplanner solves relocation-aware floorplanning problems
// from the command line.
//
// Usage:
//
//	floorplanner -design SDR2 -engine exact -time 30s -ascii
//	floorplanner -design SDR3 -engine portfolio -time 10s
//	floorplanner -design SDR2 -engine milp-ho -trace   # telemetry table
//	floorplanner -design SDR2 -engine portfolio -members exact,constructive,tessellation
//	floorplanner -design SDR2 -fallback exact,milp-ho,constructive
//	floorplanner -problem my-problem.json -svg plan.svg -out solution.json
//
// A problem file is JSON with the shape of floorplanner.Problem; the
// built-in designs SDR, SDR2 and SDR3 reproduce the paper's case study.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"time"

	floorplanner "repro"
	"repro/internal/core"
	"repro/internal/logx"
	"repro/internal/sdr"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "floorplanner:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		problemPath = flag.String("problem", "", "path to a problem JSON file")
		design      = flag.String("design", "", "built-in design: SDR, SDR2 or SDR3")
		engine      = flag.String("engine", "exact", "engine: "+strings.Join(floorplanner.EngineNames(), ", "))
		members     = flag.String("members", "", "comma-separated member engines raced by -engine portfolio (empty = default race)")
		fallback    = flag.String("fallback", "", "comma-separated engine chain; implies -engine fallback (empty chain = exact,milp-ho,constructive)")
		timeLimit   = flag.Duration("time", 60*time.Second, "solve time limit")
		seed        = flag.Int64("seed", 1, "seed for randomized engines")
		workers     = flag.Int("workers", 0, "parallel workers (engine dependent)")
		outPath     = flag.String("out", "", "write the solution as JSON to this file")
		ascii       = flag.Bool("ascii", true, "print the floorplan as ASCII art")
		svgPath     = flag.String("svg", "", "write the floorplan as SVG to this file")
		trace       = flag.Bool("trace", false, "print solve telemetry: per-span counters and the incumbent trajectory")
		logLevel    = flag.String("log-level", "info", "log level: "+logx.Levels)
		logFormat   = flag.String("log-format", "text", "log format: "+logx.Formats)
	)
	flag.Parse()

	// Results go to stdout; structured logs (engine warnings, guard
	// recoveries) go to stderr through the shared handler, so the two
	// binaries speak one logging dialect.
	log, err := logx.New(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	slog.SetDefault(log)

	p, err := loadProblem(*problemPath, *design)
	if err != nil {
		return err
	}
	if err := p.Validate(); err != nil {
		return err
	}

	var memberList []string
	if *members != "" {
		if *engine != "portfolio" {
			return fmt.Errorf("-members requires -engine portfolio")
		}
		memberList = strings.Split(*members, ",")
	}
	if *fallback != "" {
		if *members != "" {
			return fmt.Errorf("-fallback and -members are mutually exclusive")
		}
		if *engine != "exact" && *engine != "fallback" {
			return fmt.Errorf("-fallback implies -engine fallback; drop -engine %s", *engine)
		}
		*engine = "fallback"
		memberList = strings.Split(*fallback, ",")
	}

	solveOpts := floorplanner.Options{
		Engine:    *engine,
		TimeLimit: *timeLimit,
		Seed:      *seed,
		Workers:   *workers,
		Members:   memberList,
	}
	var rec *floorplanner.Recorder
	if *trace {
		rec = floorplanner.NewRecorder()
		solveOpts.Probe = rec
	}
	sol, err := floorplanner.Solve(context.Background(), p, solveOpts)
	if rec != nil {
		// Print the telemetry before the outcome so it survives even the
		// error paths below.
		fmt.Print(rec.Table())
		fmt.Println()
	}
	switch {
	case errors.Is(err, floorplanner.ErrInfeasible):
		fmt.Println("INFEASIBLE: no floorplan satisfies the constraints")
		return nil
	case errors.Is(err, floorplanner.ErrNoSolution):
		return fmt.Errorf("no solution found within %s (try a larger -time)", *timeLimit)
	case err != nil:
		return err
	}

	fmt.Print(sol.Summary(p))
	if *ascii {
		fmt.Println()
		fmt.Print(floorplanner.RenderASCII(p, sol))
	}
	if *svgPath != "" {
		if err := os.WriteFile(*svgPath, []byte(floorplanner.RenderSVG(p, sol)), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", *svgPath)
	}
	if *outPath != "" {
		data, err := json.MarshalIndent(sol, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", *outPath)
	}
	return nil
}

func loadProblem(path, design string) (*core.Problem, error) {
	switch {
	case path != "" && design != "":
		return nil, fmt.Errorf("use either -problem or -design, not both")
	case path != "":
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var p core.Problem
		if err := json.Unmarshal(data, &p); err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		return &p, nil
	case strings.EqualFold(design, "SDR"):
		return sdr.Problem(), nil
	case strings.EqualFold(design, "SDR2"):
		return sdr.SDR2(), nil
	case strings.EqualFold(design, "SDR3"):
		return sdr.SDR3(), nil
	case design != "":
		return nil, fmt.Errorf("unknown design %q (want SDR, SDR2 or SDR3)", design)
	default:
		return nil, fmt.Errorf("specify -problem <file> or -design <name>")
	}
}
