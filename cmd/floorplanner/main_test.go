package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sdr"
)

func TestLoadProblemBuiltins(t *testing.T) {
	for _, design := range []string{"SDR", "sdr2", "SDR3"} {
		p, err := loadProblem("", design)
		if err != nil {
			t.Fatalf("%s: %v", design, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", design, err)
		}
	}
	if _, err := loadProblem("", "nope"); err == nil {
		t.Fatal("unknown design accepted")
	}
	if _, err := loadProblem("", ""); err == nil {
		t.Fatal("missing inputs accepted")
	}
	if _, err := loadProblem("x.json", "SDR"); err == nil {
		t.Fatal("conflicting inputs accepted")
	}
}

func TestLoadProblemFromFile(t *testing.T) {
	p := sdr.SDR2()
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "p.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := loadProblem(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Regions) != 5 || len(back.FCAreas) != 6 {
		t.Fatal("problem lost in round trip")
	}
	if _, err := loadProblem(filepath.Join(t.TempDir(), "missing.json"), ""); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadProblem(bad, ""); err == nil {
		t.Fatal("bad JSON accepted")
	}
}
