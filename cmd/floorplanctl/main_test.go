package main

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// syntheticBundle builds a minimal floorpland-style bundle archive.
func syntheticBundle(t *testing.T, entries map[string]string) []byte {
	t.Helper()
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	tw := tar.NewWriter(gz)
	// manifest.json first, like the real bundler.
	names := []string{"manifest.json"}
	for name := range entries {
		if name != "manifest.json" {
			names = append(names, name)
		}
	}
	for _, name := range names {
		body := entries[name]
		if err := tw.WriteHeader(&tar.Header{
			Name: name, Mode: 0o644, Size: int64(len(body)), ModTime: time.Now(),
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := tw.Write([]byte(body)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func bundleServer(t *testing.T, name string, data []byte) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/bundle" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/gzip")
		w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", name))
		w.Write(data)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestDiagFetchesAndSavesBundle(t *testing.T) {
	data := syntheticBundle(t, map[string]string{
		"manifest.json": `{"schema":"floorpland-diag/1","trigger":"manual"}`,
		"flight.json":   `[]`,
	})
	srv := bundleServer(t, "bundle-20260807T000000.000Z.tar.gz", data)

	dir := t.TempDir()
	var out strings.Builder
	if err := run([]string{"diag", "-addr", srv.URL, "-out", dir}, &out); err != nil {
		t.Fatalf("diag: %v", err)
	}
	path := filepath.Join(dir, "bundle-20260807T000000.000Z.tar.gz")
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("saved bundle: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("saved bundle differs from served bytes (%d vs %d)", len(got), len(data))
	}
	if !strings.Contains(out.String(), path) {
		t.Fatalf("output %q does not mention %s", out.String(), path)
	}
}

func TestDiagUnpackPrintsManifest(t *testing.T) {
	manifest := `{"schema":"floorpland-diag/1","trigger":"manual","contents":["flight.json"]}`
	data := syntheticBundle(t, map[string]string{
		"manifest.json": manifest,
		"flight.json":   `[]`,
	})
	srv := bundleServer(t, "bundle-x.tar.gz", data)

	dir := t.TempDir()
	var out strings.Builder
	if err := run([]string{"diag", "-addr", srv.URL, "-out", dir, "-unpack"}, &out); err != nil {
		t.Fatalf("diag -unpack: %v", err)
	}
	if !strings.Contains(out.String(), "floorpland-diag/1") {
		t.Fatalf("output %q does not include the manifest", out.String())
	}
	for _, name := range []string{"manifest.json", "flight.json"} {
		if _, err := os.Stat(filepath.Join(dir, "bundle-x", name)); err != nil {
			t.Errorf("unpacked %s: %v", name, err)
		}
	}
}

func TestDiagRejectsTraversalEntries(t *testing.T) {
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	tw := tar.NewWriter(gz)
	body := "evil"
	if err := tw.WriteHeader(&tar.Header{
		Name: "../escape.txt", Mode: 0o644, Size: int64(len(body)), ModTime: time.Now(),
	}); err != nil {
		t.Fatal(err)
	}
	tw.Write([]byte(body))
	tw.Close()
	gz.Close()
	srv := bundleServer(t, "bundle-evil.tar.gz", buf.Bytes())

	dir := t.TempDir()
	var out strings.Builder
	err := run([]string{"diag", "-addr", srv.URL, "-out", dir, "-unpack"}, &out)
	if err == nil || !strings.Contains(err.Error(), "escapes") {
		t.Fatalf("want traversal rejection, got %v", err)
	}
	if _, statErr := os.Stat(filepath.Join(filepath.Dir(dir), "escape.txt")); statErr == nil {
		t.Fatal("traversal entry was written outside the target directory")
	}
}

func TestDiagServerError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "bundle capture failed", http.StatusInternalServerError)
	}))
	t.Cleanup(srv.Close)
	var out strings.Builder
	err := run([]string{"diag", "-addr", srv.URL, "-out", t.TempDir()}, &out)
	if err == nil || !strings.Contains(err.Error(), "bundle capture failed") {
		t.Fatalf("want server error surfaced, got %v", err)
	}
}

func TestUnknownSubcommand(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"frobnicate"}, &out); err == nil {
		t.Fatal("want error for unknown subcommand")
	}
	if err := run(nil, &out); err == nil {
		t.Fatal("want usage error for no args")
	}
}
