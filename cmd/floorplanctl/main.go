// Command floorplanctl is the operator CLI for a running floorpland
// daemon.
//
// Usage:
//
//	floorplanctl diag [-addr URL] [-out DIR] [-unpack] [-timeout D]
//
// diag fetches an on-demand diagnostic bundle from the daemon's
// GET /debug/bundle endpoint and saves the tar.gz under -out using the
// server-assigned name (bundle-<ts>.tar.gz). With -unpack it also
// extracts the bundle next to the archive and prints manifest.json, so
// an operator sees the trigger, build provenance and artifact list
// without reaching for tar.
package main

import (
	"archive/tar"
	"compress/gzip"
	"errors"
	"flag"
	"fmt"
	"io"
	"mime"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "floorplanctl:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return errors.New("usage: floorplanctl diag [flags] (see -h)")
	}
	switch args[0] {
	case "diag":
		return runDiag(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want diag)", args[0])
	}
}

// runDiag implements the diag subcommand: fetch, save and optionally
// unpack one bundle.
func runDiag(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("diag", flag.ContinueOnError)
	addr := fs.String("addr", "http://localhost:8080", "floorpland base URL")
	outDir := fs.String("out", ".", "directory the bundle archive is saved to")
	unpack := fs.Bool("unpack", false, "extract the bundle next to the archive and print manifest.json")
	timeout := fs.Duration("timeout", 60*time.Second, "HTTP timeout for the capture (covers the server-side CPU profile window)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	name, data, err := fetchBundle(*addr, *timeout)
	if err != nil {
		return err
	}
	path := filepath.Join(*outDir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "saved %s (%d bytes)\n", path, len(data))

	if !*unpack {
		return nil
	}
	dir := strings.TrimSuffix(path, ".tar.gz")
	manifest, err := unpackBundle(data, dir)
	if err != nil {
		return fmt.Errorf("unpacking %s: %w", path, err)
	}
	fmt.Fprintf(out, "unpacked into %s\n", dir)
	out.Write(manifest)
	if len(manifest) > 0 && manifest[len(manifest)-1] != '\n' {
		fmt.Fprintln(out)
	}
	return nil
}

// fetchBundle GETs /debug/bundle and returns the server-assigned
// filename (from Content-Disposition, with a timestamped fallback) and
// the archive bytes.
func fetchBundle(addr string, timeout time.Duration) (name string, data []byte, err error) {
	client := &http.Client{Timeout: timeout}
	url := strings.TrimSuffix(addr, "/") + "/debug/bundle"
	resp, err := client.Get(url)
	if err != nil {
		return "", nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return "", nil, fmt.Errorf("GET %s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	data, err = io.ReadAll(resp.Body)
	if err != nil {
		return "", nil, err
	}
	name = "bundle-" + time.Now().UTC().Format("20060102T150405") + ".tar.gz"
	if cd := resp.Header.Get("Content-Disposition"); cd != "" {
		if _, params, err := mime.ParseMediaType(cd); err == nil {
			if fn := filepath.Base(params["filename"]); fn != "" && fn != "." && fn != "/" {
				name = fn
			}
		}
	}
	return name, data, nil
}

// unpackBundle extracts the tar.gz into dir and returns manifest.json's
// contents. Entry names are validated against path traversal: anything
// absolute or escaping dir is rejected.
func unpackBundle(data []byte, dir string) ([]byte, error) {
	gz, err := gzip.NewReader(strings.NewReader(string(data)))
	if err != nil {
		return nil, err
	}
	defer gz.Close()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var manifest []byte
	tr := tar.NewReader(gz)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if hdr.Typeflag != tar.TypeReg {
			continue
		}
		name := filepath.Clean(hdr.Name)
		if filepath.IsAbs(name) || name == ".." || strings.HasPrefix(name, ".."+string(filepath.Separator)) {
			return nil, fmt.Errorf("archive entry %q escapes the target directory", hdr.Name)
		}
		dest := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(dest), 0o755); err != nil {
			return nil, err
		}
		contents, err := io.ReadAll(tr)
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(dest, contents, 0o644); err != nil {
			return nil, err
		}
		if name == "manifest.json" {
			manifest = contents
		}
	}
	if manifest == nil {
		return nil, errors.New("bundle has no manifest.json")
	}
	return manifest, nil
}
